package colfmt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"iolayers/internal/darshan/logfmt"
)

// decErrf builds a structured *logfmt.DecodeError — colfmt reuses
// logfmt's error taxonomy so corrupt-input handling is uniform across
// both formats. Sections are prefixed "colfmt-" to keep the two formats'
// failures distinguishable in quarantine manifests and metrics.
func decErrf(kind logfmt.ErrorKind, section string, offset int64, format string, args ...any) error {
	return &logfmt.DecodeError{Kind: kind, Section: section, Offset: offset,
		Detail: fmt.Sprintf(format, args...)}
}

// Reader walks a columnar file segment by segment. NextRaw performs only
// the cheap framing work — length, CRC — and hands back the undecoded
// payload, so a dispatcher can stream segments to parallel workers that
// pay for DecodeSegment themselves (the same hand-off shape as
// logfmt.ArchiveReader.NextRaw).
type Reader struct {
	r   io.Reader
	lim logfmt.DecodeLimits
	off int64 // input offset of the next frame
	buf []byte
	done bool
}

// NewReader validates the file header and positions the reader at the
// first segment, under default limits.
func NewReader(r io.Reader) (*Reader, error) {
	return NewReaderWithLimits(r, logfmt.DecodeLimits{})
}

// NewReaderWithLimits is NewReader with explicit decode limits; zero
// fields take the logfmt defaults.
func NewReaderWithLimits(r io.Reader, lim logfmt.DecodeLimits) (*Reader, error) {
	cr := &Reader{r: r, lim: sanitized(lim)}
	var hdr [6]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, decErrf(logfmt.KindTruncated, "colfmt-header", 0, "reading file header: %v", err)
	}
	if string(hdr[:4]) != Magic {
		return nil, decErrf(logfmt.KindBadMagic, "colfmt-header", 0, "magic %q, want %q", hdr[:4], Magic)
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != Version {
		return nil, decErrf(logfmt.KindBadVersion, "colfmt-header", 4, "version %d, want %d", v, Version)
	}
	cr.off = 6
	return cr, nil
}

// InputOffset returns the byte offset of the next segment frame.
func (r *Reader) InputOffset() int64 { return r.off }

// NextRaw returns the next segment's payload, CRC-verified but not
// decoded. io.EOF signals the terminator was reached cleanly. The slice
// is the reader's scratch: valid only until the next call, so hand-offs
// must copy.
func (r *Reader) NextRaw() ([]byte, error) {
	if r.done {
		return nil, io.EOF
	}
	frameOff := r.off
	var lenBuf [4]byte
	if _, err := io.ReadFull(r.r, lenBuf[:]); err != nil {
		return nil, decErrf(logfmt.KindTruncated, "colfmt-frame", frameOff,
			"reading segment length: %v", err)
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n == 0 {
		r.done = true
		return nil, io.EOF
	}
	if int64(n) > int64(r.lim.MaxArchiveEntry) {
		return nil, decErrf(logfmt.KindLimitExceeded, "colfmt-frame", frameOff,
			"segment of %d bytes exceeds limit %d", n, r.lim.MaxArchiveEntry)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r.r, crcBuf[:]); err != nil {
		return nil, decErrf(logfmt.KindTruncated, "colfmt-frame", frameOff,
			"reading segment checksum: %v", err)
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return nil, decErrf(logfmt.KindTruncated, "colfmt-frame", frameOff,
			"segment claims %d bytes: %v", n, err)
	}
	if got, want := crc32.ChecksumIEEE(r.buf), binary.LittleEndian.Uint32(crcBuf[:]); got != want {
		return nil, decErrf(logfmt.KindCorrupt, "colfmt-frame", frameOff,
			"segment checksum 0x%08x, want 0x%08x", got, want)
	}
	r.off += 8 + int64(n)
	return r.buf, nil
}

// segHeaderFixed is the fixed prefix of a segment payload: four table row
// counts and the column count.
const segHeaderFixed = 4*4 + 2

// colRange is a column's byte range within the segment body, parallel to
// SegmentInfo.Columns.
type colRange struct{ off, len int }

// parseHeader validates a payload's header and returns the info, the
// body offset within the payload, and each column's body range.
func parseHeader(raw []byte, lim logfmt.DecodeLimits) (*SegmentInfo, int, []colRange, error) {
	if len(raw) < segHeaderFixed {
		return nil, 0, nil, decErrf(logfmt.KindTruncated, "colfmt-segment", -1,
			"payload of %d bytes is smaller than the %d-byte header", len(raw), segHeaderFixed)
	}
	info := &SegmentInfo{
		NumLogs:    int(binary.LittleEndian.Uint32(raw[0:])),
		FileRows:   int(binary.LittleEndian.Uint32(raw[4:])),
		PosixRows:  int(binary.LittleEndian.Uint32(raw[8:])),
		StdioXRows: int(binary.LittleEndian.Uint32(raw[12:])),
	}
	for _, c := range [...]struct {
		name string
		n    int
	}{
		{"log", info.NumLogs}, {"file", info.FileRows},
		{"posix-bin", info.PosixRows}, {"stdiox", info.StdioXRows},
	} {
		if c.n > lim.MaxRecords {
			return nil, 0, nil, decErrf(logfmt.KindLimitExceeded, "colfmt-segment", -1,
				"%d %s rows exceed limit %d", c.n, c.name, lim.MaxRecords)
		}
	}
	nCols := int(binary.LittleEndian.Uint16(raw[16:]))
	hdrLen := segHeaderFixed + nCols*colHeaderSize
	if hdrLen > len(raw) {
		return nil, 0, nil, decErrf(logfmt.KindTruncated, "colfmt-segment", -1,
			"%d column headers need %d bytes, payload has %d", nCols, hdrLen, len(raw))
	}
	body := len(raw) - hdrLen
	info.Columns = make([]ColumnStats, nCols)
	ranges := make([]colRange, nCols)
	for i := 0; i < nCols; i++ {
		h := raw[segHeaderFixed+i*colHeaderSize:]
		cs := ColumnStats{
			ID:       h[0],
			Encoding: h[1],
			Stats: Stats{
				Count:   binary.LittleEndian.Uint32(h[10:]),
				Nonzero: binary.LittleEndian.Uint32(h[14:]),
				Min:     int64(binary.LittleEndian.Uint64(h[18:])),
				Max:     int64(binary.LittleEndian.Uint64(h[26:])),
			},
		}
		off := int(binary.LittleEndian.Uint32(h[2:]))
		length := int(binary.LittleEndian.Uint32(h[6:]))
		if off > body || length > body-off {
			return nil, 0, nil, decErrf(logfmt.KindCorrupt, "colfmt-segment", -1,
				"column %d spans [%d, %d) of a %d-byte body", cs.ID, off, off+length, body)
		}
		info.Columns[i] = cs
		ranges[i] = colRange{off: off, len: length}
	}
	return info, hdrLen, ranges, nil
}

// PeekSegment parses a segment payload's header — row counts and
// per-column stats — without decoding any column. This is the predicate-
// pruning interface: a scan consults the stats and skips DecodeSegment
// entirely when no row can match.
func PeekSegment(raw []byte, lim logfmt.DecodeLimits) (*SegmentInfo, error) {
	info, _, _, err := parseHeader(raw, sanitized(lim))
	return info, err
}

// DecodeSegment decodes one segment payload into a Batch, materializing
// only the columns proj selects. Requested integer and float columns
// whose stats show all zeros are skipped (left nil, counted in
// ColumnsPruned). Unknown column IDs are ignored for forward
// compatibility; unknown encodings on a decoded column are a
// KindBadVersion error, never a panic.
func DecodeSegment(raw []byte, proj Projection, lim logfmt.DecodeLimits) (*Batch, error) {
	lim = sanitized(lim)
	info, hdrLen, ranges, err := parseHeader(raw, lim)
	if err != nil {
		return nil, err
	}
	b := &Batch{
		NumLogs:    info.NumLogs,
		FileRows:   info.FileRows,
		PosixRows:  info.PosixRows,
		StdioXRows: info.StdioXRows,
	}
	body := raw[hdrLen:]
	for i, cs := range info.Columns {
		spec, known := specByID[cs.ID]
		if !known {
			continue // future column: additive, safe to skip
		}
		if spec.tbl != tblDict && proj&spec.group == 0 {
			continue
		}
		rows := tableRows(b, spec.tbl)
		if spec.tbl != tblDict && int(cs.Stats.Count) != rows {
			return nil, decErrf(logfmt.KindCorrupt, "colfmt-column", -1,
				"column %d holds %d values, table has %d rows", cs.ID, cs.Stats.Count, rows)
		}
		data := body[ranges[i].off : ranges[i].off+ranges[i].len]

		if spec.tbl == tblDict {
			dict, err := decodeStrings(data, lim)
			if err != nil {
				return nil, err
			}
			b.Dict = dict
			continue
		}
		if cs.Stats.Nonzero == 0 {
			b.ColumnsPruned++
			continue
		}
		if spec.float {
			if cs.Encoding != encFloat {
				return nil, decErrf(logfmt.KindBadVersion, "colfmt-column", -1,
					"column %d uses unknown encoding %d", cs.ID, cs.Encoding)
			}
			vals, err := decodeFloats(data, int(cs.Stats.Count), cs.ID)
			if err != nil {
				return nil, err
			}
			setFloatColumn(b, cs.ID, vals)
		} else {
			vals, err := decodeInts(data, int(cs.Stats.Count), cs.Encoding, cs.ID)
			if err != nil {
				return nil, err
			}
			setIntColumn(b, cs.ID, vals)
		}
	}
	if b.Dict == nil {
		return nil, decErrf(logfmt.KindCorrupt, "colfmt-segment", -1, "segment has no dictionary column")
	}
	if err := b.validate(); err != nil {
		return nil, err
	}
	return b, nil
}

func tableRows(b *Batch, t tableKind) int {
	switch t {
	case tblLogs:
		return b.NumLogs
	case tblFiles:
		return b.FileRows
	case tblPosix:
		return b.PosixRows
	case tblStdioX:
		return b.StdioXRows
	default:
		return 0
	}
}

// validate enforces the structural invariants a fold relies on, so a
// crafted segment cannot push FoldBatch out of bounds: dictionary
// references resolve, row-end columns are monotone and land exactly on
// their table's row count.
func (b *Batch) validate() error {
	maxDict := int64(len(b.Dict))
	checkDict := func(col []int64, name string) error {
		for _, id := range col {
			if id < 0 || id >= maxDict {
				return decErrf(logfmt.KindCorrupt, "colfmt-column", -1,
					"%s references dictionary entry %d of %d", name, id, maxDict)
			}
		}
		return nil
	}
	if err := checkDict(b.Domain, "domain column"); err != nil {
		return err
	}
	if err := checkDict(b.FilePath, "file path column"); err != nil {
		return err
	}
	if err := checkDict(b.PosixHistPath, "posix-bin path column"); err != nil {
		return err
	}
	if err := checkDict(b.StdioXPath, "stdiox path column"); err != nil {
		return err
	}
	checkEnds := func(ends []int64, rows int, name string) error {
		if ends == nil {
			// Pruned to nil means every end is zero — consistent only
			// with an empty table.
			if rows != 0 && b.NumLogs > 0 {
				return decErrf(logfmt.KindCorrupt, "colfmt-column", -1,
					"%s is all-zero but table has %d rows", name, rows)
			}
			return nil
		}
		prev := int64(0)
		for _, e := range ends {
			if e < prev || e > int64(rows) {
				return decErrf(logfmt.KindCorrupt, "colfmt-column", -1,
					"%s not monotone within table of %d rows", name, rows)
			}
			prev = e
		}
		if prev != int64(rows) {
			return decErrf(logfmt.KindCorrupt, "colfmt-column", -1,
				"%s covers %d of %d rows", name, prev, rows)
		}
		return nil
	}
	// Row-end checks only apply when the log table was decoded; narrow
	// scans that skip GroupLogs iterate rows flat and never use ends.
	if b.FileEnd != nil || b.PosixEnd != nil || b.StdioXEnd != nil || b.JobID != nil || b.StartTime != nil {
		if err := checkEnds(b.FileEnd, b.FileRows, "file row ends"); err != nil {
			return err
		}
		if err := checkEnds(b.PosixEnd, b.PosixRows, "posix-bin row ends"); err != nil {
			return err
		}
		if err := checkEnds(b.StdioXEnd, b.StdioXRows, "stdiox row ends"); err != nil {
			return err
		}
	}
	return nil
}

// setIntColumn routes a decoded integer column into its Batch field.
func setIntColumn(b *Batch, id byte, vals []int64) {
	switch id {
	case colJobID:
		b.JobID = vals
	case colUserID:
		b.UserID = vals
	case colNProcs:
		b.NProcs = vals
	case colStartTime:
		b.StartTime = vals
	case colEndTime:
		b.EndTime = vals
	case colDomain:
		b.Domain = vals
	case colTuneStripe:
		b.TuneStripe = vals
	case colTuneColl:
		b.TuneColl = vals
	case colTuneIndep:
		b.TuneIndep = vals
	case colFileEnd:
		b.FileEnd = vals
	case colPosixEnd:
		b.PosixEnd = vals
	case colStdioXEnd:
		b.StdioXEnd = vals
	case colFileFlags:
		b.FileFlags = vals
	case colFilePath:
		b.FilePath = vals
	case colPosixReadB:
		b.PosixReadB = vals
	case colPosixWriteB:
		b.PosixWriteB = vals
	case colMpiioReadB:
		b.MpiioReadB = vals
	case colMpiioWriteB:
		b.MpiioWriteB = vals
	case colStdioReadB:
		b.StdioReadB = vals
	case colStdioWriteB:
		b.StdioWriteB = vals
	case colPosixHistPath:
		b.PosixHistPath = vals
	case colStdioXPath:
		b.StdioXPath = vals
	case colStdioXRewrite:
		b.StdioXRewrite = vals
	case colStdioXUnique:
		b.StdioXUnique = vals
	default:
		switch {
		case id >= colPosixBins && id < colPosixBins+numBins:
			b.PosixBins[id-colPosixBins] = vals
		case id >= colStdioXBins && id < colStdioXBins+numBins:
			b.StdioXBins[id-colStdioXBins] = vals
		}
	}
}

func setFloatColumn(b *Batch, id byte, vals []float64) {
	switch id {
	case colPosixReadT:
		b.PosixReadT = vals
	case colPosixWriteT:
		b.PosixWriteT = vals
	case colMpiioReadT:
		b.MpiioReadT = vals
	case colMpiioWriteT:
		b.MpiioWriteT = vals
	case colStdioReadT:
		b.StdioReadT = vals
	case colStdioWriteT:
		b.StdioWriteT = vals
	}
}

// decodeInts decodes count varint-family values. The one-byte-per-value
// floor rejects impossible claims before the result is allocated —
// logfmt's boundCount discipline.
func decodeInts(src []byte, count int, enc byte, id byte) ([]int64, error) {
	if len(src) < count {
		return nil, decErrf(logfmt.KindCorrupt, "colfmt-column", -1,
			"column %d claims %d values in %d bytes", id, count, len(src))
	}
	out := make([]int64, count)
	off := 0
	switch enc {
	case encVarint:
		for i := range out {
			v, n := binary.Uvarint(src[off:])
			if n <= 0 {
				return nil, decErrf(logfmt.KindCorrupt, "colfmt-column", -1,
					"column %d: bad varint at value %d", id, i)
			}
			out[i] = int64(v)
			off += n
		}
	case encZigzag:
		for i := range out {
			v, n := binary.Varint(src[off:])
			if n <= 0 {
				return nil, decErrf(logfmt.KindCorrupt, "colfmt-column", -1,
					"column %d: bad varint at value %d", id, i)
			}
			out[i] = v
			off += n
		}
	case encDelta:
		prev := int64(0)
		for i := range out {
			d, n := binary.Varint(src[off:])
			if n <= 0 {
				return nil, decErrf(logfmt.KindCorrupt, "colfmt-column", -1,
					"column %d: bad varint at value %d", id, i)
			}
			prev += d
			out[i] = prev
			off += n
		}
	default:
		return nil, decErrf(logfmt.KindBadVersion, "colfmt-column", -1,
			"column %d uses unknown encoding %d", id, enc)
	}
	if off != len(src) {
		return nil, decErrf(logfmt.KindCorrupt, "colfmt-column", -1,
			"column %d: %d trailing bytes", id, len(src)-off)
	}
	return out, nil
}

func decodeFloats(src []byte, count int, id byte) ([]float64, error) {
	if len(src) != count*8 {
		return nil, decErrf(logfmt.KindCorrupt, "colfmt-column", -1,
			"column %d claims %d floats in %d bytes", id, count, len(src))
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[i*8:]))
	}
	return out, nil
}

func decodeStrings(src []byte, lim logfmt.DecodeLimits) ([]string, error) {
	count, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, decErrf(logfmt.KindCorrupt, "colfmt-dictionary", -1, "bad entry count")
	}
	if count > uint64(lim.MaxNames) {
		return nil, decErrf(logfmt.KindLimitExceeded, "colfmt-dictionary", -1,
			"%d entries exceed limit %d", count, lim.MaxNames)
	}
	if count > uint64(len(src)) { // ≥1 byte per entry (its length prefix)
		return nil, decErrf(logfmt.KindCorrupt, "colfmt-dictionary", -1,
			"%d entries claimed in %d bytes", count, len(src))
	}
	off := n
	out := make([]string, count)
	for i := range out {
		l, n := binary.Uvarint(src[off:])
		if n <= 0 {
			return nil, decErrf(logfmt.KindCorrupt, "colfmt-dictionary", -1,
				"bad length prefix at entry %d", i)
		}
		off += n
		if l > uint64(lim.MaxStringLen) {
			return nil, decErrf(logfmt.KindLimitExceeded, "colfmt-dictionary", -1,
				"entry %d of %d bytes exceeds limit %d", i, l, lim.MaxStringLen)
		}
		if l > uint64(len(src)-off) {
			return nil, decErrf(logfmt.KindTruncated, "colfmt-dictionary", -1,
				"entry %d of %d bytes overruns the block", i, l)
		}
		out[i] = string(src[off : off+int(l)])
		off += int(l)
	}
	if off != len(src) {
		return nil, decErrf(logfmt.KindCorrupt, "colfmt-dictionary", -1,
			"%d trailing bytes", len(src)-off)
	}
	if len(out) == 0 || out[0] != "" {
		return nil, decErrf(logfmt.KindCorrupt, "colfmt-dictionary", -1,
			"entry 0 must be the empty string")
	}
	return out, nil
}

// SniffFile reports whether path starts with the colfmt magic — the
// cheap dispatch test CLI and service layers use to route a source to
// the columnar or row-oriented reader.
func SniffFile(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var hdr [4]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return false
	}
	return string(hdr[:]) == Magic
}

// ScanFile walks every segment of the file at path sequentially, decoding
// under proj and calling fn with each batch. fn returning logfmt.ErrStop
// ends the scan early with a nil error.
func ScanFile(path string, proj Projection, lim logfmt.DecodeLimits, fn func(seg int, b *Batch) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := NewReaderWithLimits(f, lim)
	if err != nil {
		return err
	}
	for seg := 0; ; seg++ {
		raw, err := r.NextRaw()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		b, err := DecodeSegment(raw, proj, lim)
		if err != nil {
			return err
		}
		if err := fn(seg, b); err != nil {
			if errors.Is(err, logfmt.ErrStop) {
				return nil
			}
			return err
		}
	}
}
