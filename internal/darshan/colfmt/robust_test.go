package colfmt

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"iolayers/internal/darshan/logfmt"
)

// writeTemp puts data in a temp file and returns its path.
func writeTemp(t testing.TB, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "campaign.dgc")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// checkDecodeErr asserts colfmt's error contract: every failure is a
// structured *logfmt.DecodeError that unwraps to exactly one sentinel and
// names a colfmt section.
func checkDecodeErr(t *testing.T, err error) {
	t.Helper()
	var de *logfmt.DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("decode failure is not a *logfmt.DecodeError: %v", err)
	}
	sentinels := 0
	for _, s := range []error{logfmt.ErrTruncated, logfmt.ErrCorrupt, logfmt.ErrLimit,
		logfmt.ErrBadMagic, logfmt.ErrVersion} {
		if errors.Is(err, s) {
			sentinels++
		}
	}
	if sentinels != 1 {
		t.Fatalf("error matches %d sentinels, want exactly 1: %v", sentinels, err)
	}
	if de.Section == "" {
		t.Fatalf("DecodeError without section: %v", err)
	}
}

// segmentEnds decodes the intact file once, recording the stream offset
// after each complete segment frame.
func segmentEnds(t *testing.T, data []byte) []int64 {
	t.Helper()
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var ends []int64
	for {
		if _, err := r.NextRaw(); err != nil {
			if !errors.Is(err, io.EOF) {
				t.Fatal(err)
			}
			return ends
		}
		ends = append(ends, r.InputOffset())
	}
}

// TestTruncationEveryByte cuts a three-segment file at every byte boundary
// and asserts the robustness contract: no panic, every segment wholly
// before the cut still decodes, the damage classifies as truncation, and a
// cut file is never mistaken for a cleanly terminated one.
func TestTruncationEveryByte(t *testing.T) {
	data := encodeFile(t, 6, 2)
	ends := segmentEnds(t, data)
	const headerSize = 6
	for cut := 0; cut <= len(data); cut++ {
		prefix := data[:cut]
		wantSegs := 0
		for _, end := range ends {
			if int64(cut) >= end {
				wantSegs++
			}
		}
		r, err := NewReader(bytes.NewReader(prefix))
		if err != nil {
			if cut >= headerSize {
				t.Fatalf("cut=%d: complete header rejected: %v", cut, err)
			}
			if !errors.Is(err, logfmt.ErrTruncated) {
				t.Fatalf("cut=%d: header error = %v, want ErrTruncated", cut, err)
			}
			continue
		}
		if cut < headerSize {
			t.Fatalf("cut=%d: incomplete header accepted", cut)
		}
		got := 0
		var finalErr error
		for {
			raw, err := r.NextRaw()
			if err != nil {
				finalErr = err
				break
			}
			if _, err := DecodeSegment(raw, ProjectAll, logfmt.DecodeLimits{}); err != nil {
				t.Fatalf("cut=%d: intact segment %d failed to decode: %v", cut, got, err)
			}
			got++
		}
		if got != wantSegs {
			t.Fatalf("cut=%d: salvaged %d segments, want %d", cut, got, wantSegs)
		}
		if cut == len(data) {
			if !errors.Is(finalErr, io.EOF) {
				t.Fatalf("intact file ended with %v, want io.EOF", finalErr)
			}
			continue
		}
		if errors.Is(finalErr, io.EOF) {
			t.Fatalf("cut=%d: truncated file reported clean EOF", cut)
		}
		checkDecodeErr(t, finalErr)
		if !errors.Is(finalErr, logfmt.ErrTruncated) {
			t.Fatalf("cut=%d: error = %v, want ErrTruncated", cut, finalErr)
		}
	}
}

// TestBitFlipsNeverPanic flips every byte of a small file in turn and runs
// the full read pipeline. The frame CRC catches most flips; whatever it
// cannot (flips inside the length/CRC words themselves) must surface as a
// structured error — never a panic, never unbounded allocation (the fuzz
// limits cap every count).
func TestBitFlipsNeverPanic(t *testing.T) {
	data := encodeFile(t, 4, 2)
	lim := fuzzLimits()
	for i := range data {
		mut := bytes.Clone(data)
		mut[i] ^= 0x40
		r, err := NewReaderWithLimits(bytes.NewReader(mut), lim)
		if err != nil {
			checkDecodeErr(t, err)
			continue
		}
		for {
			raw, err := r.NextRaw()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				checkDecodeErr(t, err)
				break
			}
			if _, err := DecodeSegment(raw, ProjectAll, lim); err != nil {
				checkDecodeErr(t, err)
				break
			}
		}
	}
}

// TestSegmentCorruptionCaughtByCRC verifies a body flip is caught at the
// framing layer before DecodeSegment ever sees the payload.
func TestSegmentCorruptionCaughtByCRC(t *testing.T) {
	data := encodeFile(t, 2, 2)
	mut := bytes.Clone(data)
	mut[len(mut)-12] ^= 0x01 // inside the last segment's body
	r, err := NewReader(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	var finalErr error
	for {
		if _, err := r.NextRaw(); err != nil {
			finalErr = err
			break
		}
	}
	if !errors.Is(finalErr, logfmt.ErrCorrupt) {
		t.Fatalf("flip error = %v, want ErrCorrupt", finalErr)
	}
	var de *logfmt.DecodeError
	if !errors.As(finalErr, &de) || de.Section != "colfmt-frame" {
		t.Fatalf("corruption not located in the frame section: %v", finalErr)
	}
}

// TestOversizeSegmentRejected checks the MaxArchiveEntry limit stops a
// frame that claims more bytes than the limit allows, before allocation.
func TestOversizeSegmentRejected(t *testing.T) {
	data := encodeFile(t, 2, 2)
	mut := bytes.Clone(data)
	mut[6] = 0xFF // frame length low byte → huge claimed length
	mut[7] = 0xFF
	mut[8] = 0xFF
	mut[9] = 0x7F
	lim := logfmt.DecodeLimits{MaxArchiveEntry: 1 << 16}
	r, err := NewReaderWithLimits(bytes.NewReader(mut), lim)
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.NextRaw()
	if !errors.Is(err, logfmt.ErrLimit) {
		t.Fatalf("oversize frame error = %v, want ErrLimit", err)
	}
}
