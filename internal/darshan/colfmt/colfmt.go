// Package colfmt is the columnar sibling of logfmt: the same campaign
// data, stored per counter instead of per log, so repeated analyses pay
// only for the columns they touch.
//
// A logfmt archive interleaves everything about one log — job header,
// name table, every module's counter records — inside one zlib stream
// per section. Re-rendering a report therefore re-inflates and re-decodes
// the whole campaign even when the query reads two counters. A colfmt
// file stores the campaign as segments of N logs, each segment holding
// one contiguous, lightly-encoded block per column: monotone counters as
// delta/zigzag varints, paths and domains through a per-segment string
// dictionary, float counters raw. Every block carries min/max/count/
// nonzero statistics so a reader can skip whole columns (all zeros) or
// whole segments (predicate outside [min, max]) without decoding them.
//
// The unit of storage is not the raw counter record but the pre-folded
// accounting row. At conversion time each log is grouped exactly the way
// analysis.Aggregator.AddLog groups it — per-file module views with
// POSIX/MPI-IO/STDIO byte and busy-time totals and sharedness, per-path
// POSIX and extended-STDIO access-size bin sums, per-log tuning signals
// — so folding a decoded Batch reproduces AddLog's arithmetic exactly
// (see analysis.Aggregator.FoldBatch) while skipping the per-record
// work. Paths stay dictionary-encoded strings, not layer indices, so one
// file serves any system: layer routing runs once per dictionary entry
// at fold time.
//
// Robustness follows logfmt's discipline: every length, count, and size
// field is treated as attacker-controlled, allocations are bounded by
// logfmt.DecodeLimits, and every failure is a structured
// *logfmt.DecodeError. Forward compatibility: a reader skips column IDs
// it does not know (new columns are additive), and rejects unknown
// encodings with a KindBadVersion error — never a panic.
package colfmt

import (
	"iolayers/internal/darshan/logfmt"
)

// Magic identifies a columnar campaign file.
const Magic = "DGCF"

// Version is the current format version.
const Version uint16 = 1

// Column encodings. An encoding byte outside this set fails decoding with
// KindBadVersion — the forward-compat escape hatch for future encodings.
const (
	// encVarint stores each value as an unsigned LEB128 varint of its
	// uint64 bit pattern (IDs, flags, dictionary references).
	encVarint byte = 1
	// encZigzag stores each value as a signed (zigzag) varint.
	encZigzag byte = 2
	// encDelta stores successive differences as signed varints — the
	// monotone-counter encoding (timestamps, row-end offsets).
	encDelta byte = 3
	// encFloat stores each value as a raw little-endian IEEE 754 float64.
	encFloat byte = 4
	// encStrings is the dictionary block: a uvarint entry count followed
	// by uvarint-length-prefixed UTF-8 entries.
	encStrings byte = 5
)

// Column IDs. Stable on disk; new columns append new IDs. A reader
// ignores IDs it does not know.
const (
	colDict byte = 1

	// Per-log columns (one value per log).
	colJobID      byte = 2
	colUserID     byte = 3
	colNProcs     byte = 4
	colStartTime  byte = 5
	colEndTime    byte = 6
	colDomain     byte = 7 // dictionary id of Metadata["domain"]
	colTuneStripe byte = 8 // max Lustre stripe width over the log's records
	colTuneColl   byte = 9
	colTuneIndep  byte = 10
	// Row-end columns: exclusive end index of the log's rows in each row
	// table; row ranges are [prev end, end).
	colFileEnd   byte = 11
	colPosixEnd  byte = 12
	colStdioXEnd byte = 13

	// Per-file accounting rows (one per accounted file per log, in
	// AddLog's first-appearance order).
	colFileFlags   byte = 20
	colFilePath    byte = 21 // dictionary id
	colPosixReadB  byte = 22
	colPosixWriteB byte = 23
	colMpiioReadB  byte = 24
	colMpiioWriteB byte = 25
	colStdioReadB  byte = 26
	colStdioWriteB byte = 27
	colPosixReadT  byte = 28
	colPosixWriteT byte = 29
	colMpiioReadT  byte = 30
	colMpiioWriteT byte = 31
	colStdioReadT  byte = 32
	colStdioWriteT byte = 33

	// Per-(log, path) POSIX access-size rows: 10 read bins then 10 write
	// bins, one column per bin.
	colPosixHistPath byte = 40
	colPosixBins     byte = 41 // 41..60

	// Per-(log, path) extended-STDIO rows.
	colStdioXPath    byte = 70
	colStdioXBins    byte = 71 // 71..90
	colStdioXRewrite byte = 91
	colStdioXUnique  byte = 92
)

// numBins is the per-direction access-size bin count doubled (read+write);
// kept local so colfmt does not depend on the units package.
const numBins = 20

// FileFlags bits (colFileFlags): which module views are present on the
// file row and whether each was a rank −1 shared record.
const (
	FlagPosix       int64 = 1 << 0
	FlagPosixShared int64 = 1 << 1
	FlagMpiio       int64 = 1 << 2
	FlagMpiioShared int64 = 1 << 3
	FlagStdio       int64 = 1 << 4
	FlagStdioShared int64 = 1 << 5
)

// Projection selects column groups to decode; unselected groups stay nil
// in the Batch. Narrow queries decode only what they read.
type Projection uint32

// Column groups.
const (
	// GroupLogs is the per-log table: job identity, time window, domain,
	// tuning signals, and the row-end offsets.
	GroupLogs Projection = 1 << iota
	// GroupFiles is the per-file accounting table's integer half: flags,
	// path, and the six byte counters.
	GroupFiles
	// GroupFileTimes is the per-file busy-time float columns.
	GroupFileTimes
	// GroupPosixHist is the POSIX access-size bin table.
	GroupPosixHist
	// GroupStdioX is the extended-STDIO table.
	GroupStdioX

	// ProjectAll decodes every known column — the full-report fold.
	ProjectAll Projection = GroupLogs | GroupFiles | GroupFileTimes | GroupPosixHist | GroupStdioX
)

// Stats is the per-column statistics block: row count, non-zero value
// count, and value bounds. Min and Max are meaningful for integer-encoded
// columns only (they are stored as zero for float and string columns);
// Nonzero == 0 lets a reader skip the column without decoding it, and
// [Min, Max] lets a predicate skip a whole segment.
type Stats struct {
	Count   uint32
	Nonzero uint32
	Min     int64
	Max     int64
}

// ColumnStats pairs a column's identity with its stats — the pruning
// interface exposed by PeekSegment before any column is decoded.
type ColumnStats struct {
	ID       byte
	Encoding byte
	Stats    Stats
}

// SegmentInfo is a segment's header: table row counts plus per-column
// stats, parsed without decoding any column data.
type SegmentInfo struct {
	NumLogs    int
	FileRows   int
	PosixRows  int
	StdioXRows int
	Columns    []ColumnStats
}

// MaxFileBytes returns the largest value any per-file byte-counter column
// in the segment carries, read from the stats block alone — the predicate
// behind volume-threshold segment pruning: if it is below a query's
// minimum, no file row in the segment can match and the segment need not
// be decoded.
func (si *SegmentInfo) MaxFileBytes() int64 {
	var max int64
	for _, cs := range si.Columns {
		switch cs.ID {
		case colPosixReadB, colPosixWriteB, colMpiioReadB, colMpiioWriteB,
			colStdioReadB, colStdioWriteB:
			if cs.Stats.Max > max {
				max = cs.Stats.Max
			}
		}
	}
	return max
}

// TimeRange returns the [min, max] bounds of the segment's per-log start
// times, read from the stats block alone — the predicate behind
// time-window segment pruning: a query whose window is disjoint from the
// range need not decode the segment. Column stats are computed on the
// raw values before delta encoding, so the bounds are real timestamps.
// ok is false when the segment carries no start-time column.
func (si *SegmentInfo) TimeRange() (min, max int64, ok bool) {
	for _, cs := range si.Columns {
		if cs.ID == colStartTime && cs.Stats.Count > 0 {
			return cs.Stats.Min, cs.Stats.Max, true
		}
	}
	return 0, 0, false
}

// Batch is one decoded segment: plain column slices sized to their
// table's row count. Columns outside the requested Projection — and
// columns whose stats show every value is zero — are nil; readers treat
// nil as all-zeros (the At/FAt accessors do). All integer columns are
// []int64 regardless of their on-disk encoding.
type Batch struct {
	NumLogs    int
	FileRows   int
	PosixRows  int
	StdioXRows int

	// Dict is the segment's string table. Entry 0 is always "".
	Dict []string

	// Per-log columns.
	JobID, UserID, NProcs       []int64
	StartTime, EndTime          []int64
	Domain                      []int64
	TuneStripe                  []int64
	TuneColl, TuneIndep         []int64
	FileEnd, PosixEnd, StdioXEnd []int64

	// Per-file columns.
	FileFlags, FilePath        []int64
	PosixReadB, PosixWriteB    []int64
	MpiioReadB, MpiioWriteB    []int64
	StdioReadB, StdioWriteB    []int64
	PosixReadT, PosixWriteT    []float64
	MpiioReadT, MpiioWriteT    []float64
	StdioReadT, StdioWriteT    []float64

	// POSIX access-size rows: bins 0..9 are reads, 10..19 writes.
	PosixHistPath []int64
	PosixBins     [numBins][]int64

	// Extended-STDIO rows.
	StdioXPath                  []int64
	StdioXBins                  [numBins][]int64
	StdioXRewrite, StdioXUnique []int64

	// ColumnsPruned counts requested columns skipped because their stats
	// said every value is zero — decode work the stats block saved.
	ColumnsPruned int
}

// At reads integer column c at row i, treating a nil (pruned or
// unprojected) column as zeros.
func At(c []int64, i int) int64 {
	if c == nil {
		return 0
	}
	return c[i]
}

// FAt is At for float columns.
func FAt(c []float64, i int) float64 {
	if c == nil {
		return 0
	}
	return c[i]
}

// colSpec describes one schema column: its table, projection group,
// on-disk encoding, and value kind.
type colSpec struct {
	id    byte
	tbl   tableKind
	group Projection
	enc   byte
	float bool
}

type tableKind uint8

const (
	tblDict tableKind = iota
	tblLogs
	tblFiles
	tblPosix
	tblStdioX
)

// specs is the v1 schema in on-disk column order.
var specs = buildSpecs()

func buildSpecs() []colSpec {
	s := []colSpec{
		{colDict, tblDict, 0, encStrings, false}, // always decoded

		{colJobID, tblLogs, GroupLogs, encVarint, false},
		{colUserID, tblLogs, GroupLogs, encVarint, false},
		{colNProcs, tblLogs, GroupLogs, encZigzag, false},
		{colStartTime, tblLogs, GroupLogs, encDelta, false},
		{colEndTime, tblLogs, GroupLogs, encDelta, false},
		{colDomain, tblLogs, GroupLogs, encVarint, false},
		{colTuneStripe, tblLogs, GroupLogs, encZigzag, false},
		{colTuneColl, tblLogs, GroupLogs, encZigzag, false},
		{colTuneIndep, tblLogs, GroupLogs, encZigzag, false},
		{colFileEnd, tblLogs, GroupLogs, encDelta, false},
		{colPosixEnd, tblLogs, GroupLogs, encDelta, false},
		{colStdioXEnd, tblLogs, GroupLogs, encDelta, false},

		{colFileFlags, tblFiles, GroupFiles, encVarint, false},
		{colFilePath, tblFiles, GroupFiles, encVarint, false},
		{colPosixReadB, tblFiles, GroupFiles, encZigzag, false},
		{colPosixWriteB, tblFiles, GroupFiles, encZigzag, false},
		{colMpiioReadB, tblFiles, GroupFiles, encZigzag, false},
		{colMpiioWriteB, tblFiles, GroupFiles, encZigzag, false},
		{colStdioReadB, tblFiles, GroupFiles, encZigzag, false},
		{colStdioWriteB, tblFiles, GroupFiles, encZigzag, false},
		{colPosixReadT, tblFiles, GroupFileTimes, encFloat, true},
		{colPosixWriteT, tblFiles, GroupFileTimes, encFloat, true},
		{colMpiioReadT, tblFiles, GroupFileTimes, encFloat, true},
		{colMpiioWriteT, tblFiles, GroupFileTimes, encFloat, true},
		{colStdioReadT, tblFiles, GroupFileTimes, encFloat, true},
		{colStdioWriteT, tblFiles, GroupFileTimes, encFloat, true},

		{colPosixHistPath, tblPosix, GroupPosixHist, encVarint, false},
	}
	for b := byte(0); b < numBins; b++ {
		s = append(s, colSpec{colPosixBins + b, tblPosix, GroupPosixHist, encZigzag, false})
	}
	s = append(s, colSpec{colStdioXPath, tblStdioX, GroupStdioX, encVarint, false})
	for b := byte(0); b < numBins; b++ {
		s = append(s, colSpec{colStdioXBins + b, tblStdioX, GroupStdioX, encZigzag, false})
	}
	s = append(s,
		colSpec{colStdioXRewrite, tblStdioX, GroupStdioX, encZigzag, false},
		colSpec{colStdioXUnique, tblStdioX, GroupStdioX, encZigzag, false},
	)
	return s
}

// specByID resolves known column IDs; ok=false for foreign IDs (skipped
// for forward compatibility).
var specByID = func() map[byte]colSpec {
	m := make(map[byte]colSpec, len(specs))
	for _, s := range specs {
		m[s.id] = s
	}
	return m
}()

// sanitized fills the DecodeLimits fields colfmt consults from the
// logfmt defaults, mirroring logfmt's own zero-means-default rule.
func sanitized(l logfmt.DecodeLimits) logfmt.DecodeLimits {
	d := logfmt.DefaultLimits()
	if l.MaxRecords <= 0 {
		l.MaxRecords = d.MaxRecords
	}
	if l.MaxNames <= 0 {
		l.MaxNames = d.MaxNames
	}
	if l.MaxStringLen <= 0 {
		l.MaxStringLen = d.MaxStringLen
	}
	if l.MaxArchiveEntry <= 0 {
		l.MaxArchiveEntry = d.MaxArchiveEntry
	}
	return l
}
