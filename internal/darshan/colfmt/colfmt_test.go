package colfmt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"

	"iolayers/internal/darshan"
	"iolayers/internal/darshan/logfmt"
	"iolayers/internal/units"
)

// sampleLog builds one varied log: a shared POSIX/MPI-IO file, a private
// STDIO file, and Lustre tuning metadata. The index varies identity and
// volumes so multi-log segments hold distinct rows.
func sampleLog(i int) *darshan.Log {
	rt := darshan.NewRuntime(darshan.JobHeader{
		JobID:     uint64(4242 + i),
		UserID:    uint64(99 + i%3),
		NProcs:    4,
		StartTime: 1577836800 + int64(i)*3600,
		EndTime:   1577840400 + int64(i)*3600,
		Exe:       "/sw/summit/app.x",
		Metadata:  map[string]string{"project": "CSC123", "domain": "Physics"},
	})
	for rank := int32(0); rank < 4; rank++ {
		rt.Observe(darshan.Op{Module: darshan.ModulePOSIX, Path: "/gpfs/alpine/shared.h5",
			Rank: rank, Kind: darshan.OpWrite, Size: units.ByteSize(i+1) * 16 * units.MiB,
			Offset: int64(rank) * 16 << 20, Start: 1, End: 2})
	}
	rt.Observe(darshan.Op{Module: darshan.ModuleSTDIO, Path: "/gpfs/alpine/out.log",
		Rank: 0, Kind: darshan.OpWrite, Size: 4096, Offset: 0, Start: 3, End: 3.1})
	rt.Observe(darshan.Op{Module: darshan.ModuleMPIIO, Path: "/gpfs/alpine/shared.h5",
		Rank: darshan.SharedRank, Kind: darshan.OpWrite, Collective: true,
		Size: 64 * units.MiB, Start: 1, End: 2})
	rt.Observe(darshan.Op{Module: darshan.ModulePOSIX, Path: "/gpfs/alpine/in.dat",
		Rank: 1, Kind: darshan.OpRead, Size: 128 * units.KiB, Start: 0.5, End: 0.9})
	rt.SetLustreStriping("/lustre/f.bin", 248, 1, 3, units.MiB, 4)
	return rt.Finalize()
}

// encodeFile writes n sample logs into an in-memory columnar file with the
// given segment size.
func encodeFile(t testing.TB, n, segLogs int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, segLogs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := w.Append(sampleLog(i)); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// decodeAll walks every segment of data under proj.
func decodeAll(t testing.TB, data []byte, proj Projection) []*Batch {
	t.Helper()
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var out []*Batch
	for {
		raw, err := r.NextRaw()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("NextRaw: %v", err)
		}
		b, err := DecodeSegment(raw, proj, logfmt.DecodeLimits{})
		if err != nil {
			t.Fatalf("DecodeSegment: %v", err)
		}
		out = append(out, b)
	}
}

func TestRoundTripStructure(t *testing.T) {
	const n, segLogs = 7, 3
	data := encodeFile(t, n, segLogs)
	batches := decodeAll(t, data, ProjectAll)
	if len(batches) != 3 { // 3+3+1
		t.Fatalf("%d segments, want 3", len(batches))
	}
	logs := 0
	for s, b := range batches {
		logs += b.NumLogs
		if len(b.Dict) == 0 || b.Dict[0] != "" {
			t.Fatalf("segment %d: dictionary entry 0 = %q, want empty", s, b.Dict[0])
		}
		// Every log contributes 3 accounting rows (shared.h5, out.log,
		// in.dat) and 2 POSIX histogram paths (out.log is STDIO-only);
		// row ends must land exactly on the table sizes.
		if b.FileRows != 3*b.NumLogs || b.PosixRows != 2*b.NumLogs {
			t.Fatalf("segment %d: %d file rows, %d posix rows for %d logs",
				s, b.FileRows, b.PosixRows, b.NumLogs)
		}
		if got := b.FileEnd[b.NumLogs-1]; got != int64(b.FileRows) {
			t.Fatalf("segment %d: last file end %d, rows %d", s, got, b.FileRows)
		}
		if b.StdioXRows != 0 {
			t.Fatalf("segment %d: %d stdiox rows from a non-extended log", s, b.StdioXRows)
		}
	}
	if logs != n {
		t.Fatalf("decoded %d logs, want %d", logs, n)
	}

	// Spot-check the first log's row values against what the writer was fed.
	b := batches[0]
	if b.JobID[0] != 4242 || b.UserID[0] != 99 || b.NProcs[0] != 4 {
		t.Errorf("log row = job %d user %d nprocs %d", b.JobID[0], b.UserID[0], b.NProcs[0])
	}
	if b.StartTime[0] != 1577836800 {
		t.Errorf("start time %d", b.StartTime[0])
	}
	if dom := b.Dict[b.Domain[0]]; dom != "Physics" {
		t.Errorf("domain %q", dom)
	}
	if b.TuneStripe[0] != 4 {
		t.Errorf("tuning stripe %d, want 4", b.TuneStripe[0])
	}
	// Find the shared.h5 row among the first log's files: all four ranks
	// touch it, so the runtime reduces both the POSIX and MPI-IO views to
	// shared rank −1 records.
	row := -1
	for r := 0; r < int(b.FileEnd[0]); r++ {
		if b.Dict[b.FilePath[r]] == "/gpfs/alpine/shared.h5" {
			row = r
			break
		}
	}
	if row < 0 {
		t.Fatal("no file row for shared.h5 in the first log")
	}
	wantFlags := FlagPosix | FlagPosixShared | FlagMpiio | FlagMpiioShared
	if b.FileFlags[row] != wantFlags {
		t.Errorf("flags %#x, want %#x", b.FileFlags[row], wantFlags)
	}
	if got := b.PosixWriteB[row]; got != 4*16*int64(units.MiB) {
		t.Errorf("posix write bytes %d, want %d", got, 4*16*units.MiB)
	}
	if got := b.MpiioWriteB[row]; got != 64*int64(units.MiB) {
		t.Errorf("mpiio write bytes %d, want %d", got, 64*units.MiB)
	}
	if b.PosixWriteT[row] <= 0 {
		t.Errorf("posix write time %g, want positive", b.PosixWriteT[row])
	}
}

func TestProjectionLeavesGroupsNil(t *testing.T) {
	data := encodeFile(t, 4, 4)

	files := decodeAll(t, data, GroupFiles)[0]
	if files.FileFlags == nil || files.FilePath == nil {
		t.Fatal("GroupFiles projection did not decode the files table")
	}
	if files.JobID != nil || files.FileEnd != nil {
		t.Error("GroupFiles projection decoded the log table")
	}
	if files.PosixReadT != nil || files.PosixWriteT != nil {
		t.Error("GroupFiles projection decoded float time columns")
	}
	if files.Dict == nil {
		t.Error("dictionary must decode under every projection")
	}
	for bin := range files.PosixBins {
		if files.PosixBins[bin] != nil {
			t.Fatal("GroupFiles projection decoded histogram bins")
		}
	}
	// Nil-column accessors read as zero — the contract narrow scans use.
	if At(files.JobID, 0) != 0 || FAt(files.PosixReadT, 0) != 0 {
		t.Error("At/FAt on nil columns must return 0")
	}

	logs := decodeAll(t, data, GroupLogs)[0]
	if logs.JobID == nil || logs.FileEnd == nil {
		t.Fatal("GroupLogs projection did not decode the log table")
	}
	if logs.FileFlags != nil {
		t.Error("GroupLogs projection decoded the files table")
	}
}

func TestStatsPruneAllZeroColumns(t *testing.T) {
	// sampleLog never touches STDIO reads, so colStdioReadB is all zeros in
	// every segment: the stats block must let the decoder skip it.
	data := encodeFile(t, 4, 4)
	b := decodeAll(t, data, ProjectAll)[0]
	if b.StdioReadB != nil {
		t.Error("all-zero stdio read column was decoded, not pruned")
	}
	if b.ColumnsPruned == 0 {
		t.Error("ColumnsPruned = 0 despite all-zero columns")
	}
	if At(b.StdioReadB, 0) != 0 {
		t.Error("pruned column must read as zeros")
	}

	// PeekSegment sees the same stats without decoding anything.
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := r.NextRaw()
	if err != nil {
		t.Fatal(err)
	}
	info, err := PeekSegment(raw, logfmt.DecodeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if info.NumLogs != b.NumLogs || info.FileRows != b.FileRows {
		t.Fatalf("peek rows (%d, %d) disagree with decode (%d, %d)",
			info.NumLogs, info.FileRows, b.NumLogs, b.FileRows)
	}
	var sawStdioRead bool
	for _, cs := range info.Columns {
		if cs.ID == colStdioReadB {
			sawStdioRead = true
			if cs.Stats.Nonzero != 0 {
				t.Errorf("stdio read stats claim %d nonzero values", cs.Stats.Nonzero)
			}
		}
		if cs.ID == colPosixWriteB && cs.Stats.Max < 4*16*int64(units.MiB) {
			t.Errorf("posix write max %d below the known largest row", cs.Stats.Max)
		}
	}
	if !sawStdioRead {
		t.Fatal("stats block is missing the stdio read column")
	}
	if got := info.MaxFileBytes(); got != 4*64*int64(units.MiB) {
		// Largest byte value in any file column: the 4th log's POSIX write.
		t.Errorf("MaxFileBytes = %d, want %d", got, 4*64*int64(units.MiB))
	}
}

// appendForeignColumn rewrites a segment payload to carry one extra column
// with an ID outside the v1 schema — the shape a future writer would emit.
func appendForeignColumn(t *testing.T, raw []byte) []byte {
	t.Helper()
	nCols := int(binary.LittleEndian.Uint16(raw[16:]))
	hdrLen := segHeaderFixed + nCols*colHeaderSize
	foreign := []byte{0x07} // one varint value
	var h [colHeaderSize]byte
	h[0] = 250 // unknown ID
	h[1] = encVarint
	body := len(raw) - hdrLen
	binary.LittleEndian.PutUint32(h[2:], uint32(body))
	binary.LittleEndian.PutUint32(h[6:], uint32(len(foreign)))
	binary.LittleEndian.PutUint32(h[10:], 1) // count
	binary.LittleEndian.PutUint32(h[14:], 1) // nonzero
	out := make([]byte, 0, len(raw)+colHeaderSize+len(foreign))
	out = append(out, raw[:16]...)
	var nc [2]byte
	binary.LittleEndian.PutUint16(nc[:], uint16(nCols+1))
	out = append(out, nc[:]...)
	out = append(out, raw[18:hdrLen]...)
	out = append(out, h[:]...)
	out = append(out, raw[hdrLen:]...)
	out = append(out, foreign...)
	return out
}

func TestUnknownColumnSkipped(t *testing.T) {
	data := encodeFile(t, 2, 2)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := r.NextRaw()
	if err != nil {
		t.Fatal(err)
	}
	want, err := DecodeSegment(raw, ProjectAll, logfmt.DecodeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSegment(appendForeignColumn(t, raw), ProjectAll, logfmt.DecodeLimits{})
	if err != nil {
		t.Fatalf("segment with a future column failed to decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("future column changed the decoded batch")
	}
}

func TestUnknownEncodingRejected(t *testing.T) {
	data := encodeFile(t, 2, 2)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := r.NextRaw()
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(id byte) []byte {
		out := bytes.Clone(raw)
		nCols := int(binary.LittleEndian.Uint16(out[16:]))
		for i := 0; i < nCols; i++ {
			h := out[segHeaderFixed+i*colHeaderSize:]
			if h[0] == id {
				h[1] = 99 // an encoding this version does not know
				return out
			}
		}
		t.Fatalf("column %d not present", id)
		return nil
	}
	for _, id := range []byte{colJobID, colPosixWriteT} {
		_, err := DecodeSegment(mutate(id), ProjectAll, logfmt.DecodeLimits{})
		if !errors.Is(err, logfmt.ErrVersion) {
			t.Errorf("column %d with unknown encoding: err = %v, want ErrVersion", id, err)
		}
		var de *logfmt.DecodeError
		if !errors.As(err, &de) || de.Kind != logfmt.KindBadVersion {
			t.Errorf("column %d: error not classified bad-version: %v", id, err)
		}
	}
}

func TestEmptyFile(t *testing.T) {
	data := encodeFile(t, 0, 4)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("empty columnar file rejected: %v", err)
	}
	if _, err := r.NextRaw(); !errors.Is(err, io.EOF) {
		t.Fatalf("empty file NextRaw = %v, want io.EOF", err)
	}
	// And it stays EOF.
	if _, err := r.NextRaw(); !errors.Is(err, io.EOF) {
		t.Fatal("reader did not latch EOF")
	}
}

func TestReaderRejectsForeignHeaders(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("DGAR\x01\x00"))); !errors.Is(err, logfmt.ErrBadMagic) {
		t.Errorf("logfmt magic accepted: %v", err)
	}
	bad := []byte(Magic)
	bad = append(bad, 0xFF, 0xFF)
	if _, err := NewReader(bytes.NewReader(bad)); !errors.Is(err, logfmt.ErrVersion) {
		t.Errorf("future version accepted: %v", err)
	}
	if _, err := NewReader(bytes.NewReader([]byte("DG"))); !errors.Is(err, logfmt.ErrTruncated) {
		t.Errorf("short header error = %v, want ErrTruncated", err)
	}
}

func TestScanFileStopsEarly(t *testing.T) {
	data := encodeFile(t, 6, 2)
	path := writeTemp(t, data)
	segs := 0
	err := ScanFile(path, GroupFiles, logfmt.DecodeLimits{}, func(seg int, b *Batch) error {
		segs++
		if seg == 1 {
			return logfmt.ErrStop
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ScanFile: %v", err)
	}
	if segs != 2 {
		t.Fatalf("scanned %d segments after ErrStop at the second, want 2", segs)
	}
}
