package colfmt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"iolayers/internal/darshan"
)

// DefaultSegmentLogs is how many logs one segment spans when the caller
// does not choose: large enough to amortize per-segment framing and give
// the stats block real pruning power, small enough that a worker's
// decoded Batch stays modest.
const DefaultSegmentLogs = 256

// Writer streams logs into a columnar campaign file. Append extracts one
// log's accounting rows into the open segment; every SegmentLogs logs the
// segment's columns are encoded and framed out. Close flushes the final
// partial segment and writes the terminator. Writer is not safe for
// concurrent use.
type Writer struct {
	w       io.Writer
	err     error // sticky
	count   int   // logs appended over the file's lifetime
	segments int
	segLogs int

	seg segment

	// Per-Append scratch, reused so extraction allocates nothing
	// steady-state (the same discipline as Aggregator.AddLog).
	scratchIdx   map[darshan.RecordID]int32
	scratchOrder []darshan.RecordID
	scratchViews []fileView
	histIdx      map[int64]int32 // dict id → the open log's POSIX bin row
	sxIdx        map[int64]int32 // dict id → the open log's StdioX row
}

// modView mirrors analysis's per-(file, module) fold: record count, the
// single record's rank (collapsing to 0 once ranks merge), and byte/time
// totals. Kept in sync by the round-trip property tests — the byte
// identity of columnar reports rests on this matching AddLog's grouping.
type modView struct {
	n             int
	rank          int32
	readB, writeB int64
	readT, writeT float64
}

func (mv *modView) add(rec *darshan.FileRecord, cRead, cWrite, fRead, fWrite int) {
	mv.n++
	if mv.n == 1 {
		mv.rank = rec.Rank
	} else {
		mv.rank = 0
	}
	mv.readB += rec.Counters[cRead]
	mv.writeB += rec.Counters[cWrite]
	mv.readT += rec.FCounters[fRead]
	mv.writeT += rec.FCounters[fWrite]
}

func (mv *modView) present() bool { return mv.n > 0 }
func (mv *modView) shared() bool  { return mv.rank == darshan.SharedRank }

type fileView struct {
	posix, mpiio, stdio modView
}

// segment is the column builder for the open segment.
type segment struct {
	dict    []string
	dictIdx map[string]int64

	logs int

	jobID, userID, nprocs []int64
	start, end            []int64
	domain                []int64
	tuneStripe            []int64
	tuneColl, tuneIndep   []int64
	fileEnd, posixEnd, stdioxEnd []int64

	fileFlags, filePath []int64
	pReadB, pWriteB     []int64
	mReadB, mWriteB     []int64
	sReadB, sWriteB     []int64
	pReadT, pWriteT     []float64
	mReadT, mWriteT     []float64
	sReadT, sWriteT     []float64

	phPath []int64
	phBins [numBins][]int64

	sxPath                []int64
	sxBins                [numBins][]int64
	sxRewrite, sxUnique   []int64
}

func (s *segment) reset() {
	s.dict = append(s.dict[:0], "")
	if s.dictIdx == nil {
		s.dictIdx = map[string]int64{}
	} else {
		clear(s.dictIdx)
	}
	s.dictIdx[""] = 0
	s.logs = 0
	for _, c := range s.intCols() {
		*c = (*c)[:0]
	}
	for _, c := range s.floatCols() {
		*c = (*c)[:0]
	}
}

func (s *segment) intCols() []*[]int64 {
	cols := []*[]int64{
		&s.jobID, &s.userID, &s.nprocs, &s.start, &s.end, &s.domain,
		&s.tuneStripe, &s.tuneColl, &s.tuneIndep,
		&s.fileEnd, &s.posixEnd, &s.stdioxEnd,
		&s.fileFlags, &s.filePath,
		&s.pReadB, &s.pWriteB, &s.mReadB, &s.mWriteB, &s.sReadB, &s.sWriteB,
		&s.phPath, &s.sxPath, &s.sxRewrite, &s.sxUnique,
	}
	for b := 0; b < numBins; b++ {
		cols = append(cols, &s.phBins[b], &s.sxBins[b])
	}
	return cols
}

func (s *segment) floatCols() []*[]float64 {
	return []*[]float64{&s.pReadT, &s.pWriteT, &s.mReadT, &s.mWriteT, &s.sReadT, &s.sWriteT}
}

// dictID interns a string into the segment dictionary.
func (s *segment) dictID(str string) int64 {
	if id, ok := s.dictIdx[str]; ok {
		return id
	}
	id := int64(len(s.dict))
	s.dict = append(s.dict, str)
	s.dictIdx[str] = id
	return id
}

// rows returns a table's current row count.
func (s *segment) rows(t tableKind) int {
	switch t {
	case tblDict:
		return len(s.dict)
	case tblLogs:
		return s.logs
	case tblFiles:
		return len(s.fileFlags)
	case tblPosix:
		return len(s.phPath)
	default:
		return len(s.sxPath)
	}
}

// column resolves a schema column to the builder's data slice.
func (s *segment) column(id byte) (ints []int64, floats []float64) {
	switch id {
	case colJobID:
		return s.jobID, nil
	case colUserID:
		return s.userID, nil
	case colNProcs:
		return s.nprocs, nil
	case colStartTime:
		return s.start, nil
	case colEndTime:
		return s.end, nil
	case colDomain:
		return s.domain, nil
	case colTuneStripe:
		return s.tuneStripe, nil
	case colTuneColl:
		return s.tuneColl, nil
	case colTuneIndep:
		return s.tuneIndep, nil
	case colFileEnd:
		return s.fileEnd, nil
	case colPosixEnd:
		return s.posixEnd, nil
	case colStdioXEnd:
		return s.stdioxEnd, nil
	case colFileFlags:
		return s.fileFlags, nil
	case colFilePath:
		return s.filePath, nil
	case colPosixReadB:
		return s.pReadB, nil
	case colPosixWriteB:
		return s.pWriteB, nil
	case colMpiioReadB:
		return s.mReadB, nil
	case colMpiioWriteB:
		return s.mWriteB, nil
	case colStdioReadB:
		return s.sReadB, nil
	case colStdioWriteB:
		return s.sWriteB, nil
	case colPosixReadT:
		return nil, s.pReadT
	case colPosixWriteT:
		return nil, s.pWriteT
	case colMpiioReadT:
		return nil, s.mReadT
	case colMpiioWriteT:
		return nil, s.mWriteT
	case colStdioReadT:
		return nil, s.sReadT
	case colStdioWriteT:
		return nil, s.sWriteT
	case colPosixHistPath:
		return s.phPath, nil
	case colStdioXPath:
		return s.sxPath, nil
	case colStdioXRewrite:
		return s.sxRewrite, nil
	case colStdioXUnique:
		return s.sxUnique, nil
	}
	if id >= colPosixBins && id < colPosixBins+numBins {
		return s.phBins[id-colPosixBins], nil
	}
	if id >= colStdioXBins && id < colStdioXBins+numBins {
		return s.sxBins[id-colStdioXBins], nil
	}
	panic(fmt.Sprintf("colfmt: no builder column for id %d", id))
}

// NewWriter starts a columnar file on w: the header is written
// immediately. segmentLogs ≤ 0 takes DefaultSegmentLogs.
func NewWriter(w io.Writer, segmentLogs int) (*Writer, error) {
	if segmentLogs <= 0 {
		segmentLogs = DefaultSegmentLogs
	}
	cw := &Writer{
		w:          w,
		segLogs:    segmentLogs,
		scratchIdx: map[darshan.RecordID]int32{},
		histIdx:    map[int64]int32{},
		sxIdx:      map[int64]int32{},
	}
	cw.seg.reset()
	var hdr [6]byte
	copy(hdr[:], Magic)
	binary.LittleEndian.PutUint16(hdr[4:], Version)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("colfmt: writing header: %w", err)
	}
	return cw, nil
}

// Count returns the number of logs appended so far.
func (w *Writer) Count() int { return w.count }

// Segments returns the number of segments flushed so far.
func (w *Writer) Segments() int { return w.segments }

// Append extracts one log into the open segment, flushing the segment
// when it reaches the configured log count.
func (w *Writer) Append(log *darshan.Log) error {
	if w.err != nil {
		return w.err
	}
	w.extract(log)
	w.count++
	if w.seg.logs >= w.segLogs {
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// extract folds one log into the segment builder. The grouping pass is a
// deliberate structural copy of Aggregator.AddLog: records group per
// RecordID in first-appearance order, only files with a POSIX, MPI-IO, or
// STDIO view and a resolvable non-empty path become accounting rows.
func (w *Writer) extract(log *darshan.Log) {
	s := &w.seg

	clear(w.scratchIdx)
	order := w.scratchOrder[:0]
	views := w.scratchViews[:0]
	var tuneStripe, tuneColl, tuneIndep int64
	for _, rec := range log.Records {
		idx, ok := w.scratchIdx[rec.Record]
		if !ok {
			views = append(views, fileView{})
			idx = int32(len(views) - 1)
			w.scratchIdx[rec.Record] = idx
			order = append(order, rec.Record)
		}
		fv := &views[idx]
		switch rec.Module {
		case darshan.ModulePOSIX:
			fv.posix.add(rec, darshan.PosixBytesRead, darshan.PosixBytesWritten,
				darshan.PosixFReadTime, darshan.PosixFWriteTime)
		case darshan.ModuleMPIIO:
			fv.mpiio.add(rec, darshan.MpiioBytesRead, darshan.MpiioBytesWritten,
				darshan.MpiioFReadTime, darshan.MpiioFWriteTime)
			tuneColl += rec.Counters[darshan.MpiioCollReads] +
				rec.Counters[darshan.MpiioCollWrites] + rec.Counters[darshan.MpiioCollOpens]
			tuneIndep += rec.Counters[darshan.MpiioIndepReads] +
				rec.Counters[darshan.MpiioIndepWrites] + rec.Counters[darshan.MpiioIndepOpens]
		case darshan.ModuleSTDIO:
			fv.stdio.add(rec, darshan.StdioBytesRead, darshan.StdioBytesWritten,
				darshan.StdioFReadTime, darshan.StdioFWriteTime)
		case darshan.ModuleLustre:
			if sw := rec.Counters[darshan.LustreStripeWidth]; sw > tuneStripe {
				tuneStripe = sw
			}
		}
	}
	w.scratchOrder = order
	w.scratchViews = views

	for i, id := range order {
		fv := &views[i]
		if !fv.posix.present() && !fv.stdio.present() && !fv.mpiio.present() {
			continue // Lustre- or StdioX-only entry
		}
		path := log.PathOf(id)
		if path == "" {
			continue // unresolvable record (truncated log)
		}
		var flags int64
		setFlags := func(mv *modView, present, shared int64) {
			if mv.present() {
				flags |= present
				if mv.shared() {
					flags |= shared
				}
			}
		}
		setFlags(&fv.posix, FlagPosix, FlagPosixShared)
		setFlags(&fv.mpiio, FlagMpiio, FlagMpiioShared)
		setFlags(&fv.stdio, FlagStdio, FlagStdioShared)
		s.fileFlags = append(s.fileFlags, flags)
		s.filePath = append(s.filePath, s.dictID(path))
		s.pReadB = append(s.pReadB, fv.posix.readB)
		s.pWriteB = append(s.pWriteB, fv.posix.writeB)
		s.mReadB = append(s.mReadB, fv.mpiio.readB)
		s.mWriteB = append(s.mWriteB, fv.mpiio.writeB)
		s.sReadB = append(s.sReadB, fv.stdio.readB)
		s.sWriteB = append(s.sWriteB, fv.stdio.writeB)
		s.pReadT = append(s.pReadT, fv.posix.readT)
		s.pWriteT = append(s.pWriteT, fv.posix.writeT)
		s.mReadT = append(s.mReadT, fv.mpiio.readT)
		s.mWriteT = append(s.mWriteT, fv.mpiio.writeT)
		s.sReadT = append(s.sReadT, fv.stdio.readT)
		s.sWriteT = append(s.sWriteT, fv.stdio.writeT)
	}

	// Access-size bin rows, pre-summed per (log, path). Integer bin adds
	// commute, so per-record and per-path folds agree exactly (the
	// histogram counters add with uint64 wrapping, a ring homomorphism
	// from int64 sums).
	clear(w.histIdx)
	clear(w.sxIdx)
	for _, rec := range log.Records {
		switch rec.Module {
		case darshan.ModulePOSIX:
			path := log.PathOf(rec.Record)
			if path == "" {
				continue
			}
			row := w.histRow(path)
			for b := 0; b < numBins/2; b++ {
				s.phBins[b][row] += rec.Counters[darshan.PosixSizeRead0To100+b]
				s.phBins[numBins/2+b][row] += rec.Counters[darshan.PosixSizeWrite0To100+b]
			}
		case darshan.ModuleStdioX:
			path := log.PathOf(rec.Record)
			if path == "" {
				continue
			}
			row := w.sxRow(path)
			for b := 0; b < numBins/2; b++ {
				s.sxBins[b][row] += rec.Counters[darshan.StdioXSizeRead0To100+b]
				s.sxBins[numBins/2+b][row] += rec.Counters[darshan.StdioXSizeWrite0To100+b]
			}
			s.sxRewrite[row] += rec.Counters[darshan.StdioXRewriteBytes]
			s.sxUnique[row] += rec.Counters[darshan.StdioXUniqueBytes]
		}
	}

	// The per-log row last: its row-end offsets cover everything above.
	s.jobID = append(s.jobID, int64(log.Job.JobID))
	s.userID = append(s.userID, int64(log.Job.UserID))
	s.nprocs = append(s.nprocs, int64(log.Job.NProcs))
	s.start = append(s.start, log.Job.StartTime)
	s.end = append(s.end, log.Job.EndTime)
	s.domain = append(s.domain, s.dictID(log.Job.Metadata["domain"]))
	s.tuneStripe = append(s.tuneStripe, tuneStripe)
	s.tuneColl = append(s.tuneColl, tuneColl)
	s.tuneIndep = append(s.tuneIndep, tuneIndep)
	s.fileEnd = append(s.fileEnd, int64(len(s.fileFlags)))
	s.posixEnd = append(s.posixEnd, int64(len(s.phPath)))
	s.stdioxEnd = append(s.stdioxEnd, int64(len(s.sxPath)))
	s.logs++
}

// histRow returns the open log's POSIX bin row for path, creating it on
// first sight.
func (w *Writer) histRow(path string) int {
	s := &w.seg
	id := s.dictID(path)
	if row, ok := w.histIdx[id]; ok {
		return int(row)
	}
	s.phPath = append(s.phPath, id)
	for b := range s.phBins {
		s.phBins[b] = append(s.phBins[b], 0)
	}
	row := len(s.phPath) - 1
	w.histIdx[id] = int32(row)
	return row
}

// sxRow is histRow for the extended-STDIO table.
func (w *Writer) sxRow(path string) int {
	s := &w.seg
	id := s.dictID(path)
	if row, ok := w.sxIdx[id]; ok {
		return int(row)
	}
	s.sxPath = append(s.sxPath, id)
	for b := range s.sxBins {
		s.sxBins[b] = append(s.sxBins[b], 0)
	}
	s.sxRewrite = append(s.sxRewrite, 0)
	s.sxUnique = append(s.sxUnique, 0)
	row := len(s.sxPath) - 1
	w.sxIdx[id] = int32(row)
	return row
}

// Flush encodes and frames out the open segment, if it holds any logs.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if w.seg.logs == 0 {
		return nil
	}
	if err := w.writeSegment(); err != nil {
		w.err = err
		return err
	}
	w.segments++
	w.seg.reset()
	return nil
}

// Close flushes the final segment and writes the zero terminator. The
// underlying writer is the caller's to close.
func (w *Writer) Close() error {
	if err := w.Flush(); err != nil {
		return err
	}
	var term [4]byte
	if _, err := w.w.Write(term[:]); err != nil {
		w.err = fmt.Errorf("colfmt: writing terminator: %w", err)
		return w.err
	}
	w.err = fmt.Errorf("colfmt: writer closed")
	return nil
}

// colHeaderSize is the fixed per-column header: id, encoding, offset,
// length, and the stats block.
const colHeaderSize = 1 + 1 + 4 + 4 + 4 + 4 + 8 + 8

// writeSegment encodes every non-empty table's columns and writes one
// framed segment: u32 payload length, u32 CRC-32 (IEEE) of the payload,
// payload. Empty tables contribute no columns at all; all-zero columns in
// non-empty tables are written (a run of varint zeros is near-free) so
// readers exercise stats-based pruning instead of special-casing absence.
func (w *Writer) writeSegment() error {
	s := &w.seg
	body := getBuf()
	defer putBuf(body)

	type colOut struct {
		spec     colSpec
		off, len int
		st       Stats
	}
	cols := make([]colOut, 0, len(specs))
	for _, spec := range specs {
		if spec.tbl != tblDict && s.rows(spec.tbl) == 0 {
			continue
		}
		off := body.Len()
		var st Stats
		switch {
		case spec.enc == encStrings:
			st = encodeStrings(body, s.dict)
		case spec.float:
			_, floats := s.column(spec.id)
			st = encodeFloats(body, floats)
		default:
			ints, _ := s.column(spec.id)
			st = encodeInts(body, ints, spec.enc)
		}
		cols = append(cols, colOut{spec: spec, off: off, len: body.Len() - off, st: st})
	}

	hdr := getBuf()
	defer putBuf(hdr)
	putU32(hdr, uint32(s.logs))
	putU32(hdr, uint32(len(s.fileFlags)))
	putU32(hdr, uint32(len(s.phPath)))
	putU32(hdr, uint32(len(s.sxPath)))
	putU16(hdr, uint16(len(cols)))
	for _, c := range cols {
		hdr.WriteByte(c.spec.id)
		hdr.WriteByte(c.spec.enc)
		putU32(hdr, uint32(c.off))
		putU32(hdr, uint32(c.len))
		putU32(hdr, c.st.Count)
		putU32(hdr, c.st.Nonzero)
		putU64(hdr, uint64(c.st.Min))
		putU64(hdr, uint64(c.st.Max))
	}

	crc := crc32.ChecksumIEEE(hdr.Bytes())
	crc = crc32.Update(crc, crc32.IEEETable, body.Bytes())
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[0:], uint32(hdr.Len()+body.Len()))
	binary.LittleEndian.PutUint32(frame[4:], crc)
	if _, err := w.w.Write(frame[:]); err != nil {
		return fmt.Errorf("colfmt: writing segment frame: %w", err)
	}
	if _, err := w.w.Write(hdr.Bytes()); err != nil {
		return fmt.Errorf("colfmt: writing segment header: %w", err)
	}
	if _, err := w.w.Write(body.Bytes()); err != nil {
		return fmt.Errorf("colfmt: writing segment body: %w", err)
	}
	return nil
}

func putU16(b *bytes.Buffer, v uint16) {
	var t [2]byte
	binary.LittleEndian.PutUint16(t[:], v)
	b.Write(t[:])
}

func putU32(b *bytes.Buffer, v uint32) {
	var t [4]byte
	binary.LittleEndian.PutUint32(t[:], v)
	b.Write(t[:])
}

func putU64(b *bytes.Buffer, v uint64) {
	var t [8]byte
	binary.LittleEndian.PutUint64(t[:], v)
	b.Write(t[:])
}

// encodeInts appends vals under enc and returns the column stats.
func encodeInts(dst *bytes.Buffer, vals []int64, enc byte) Stats {
	st := intStats(vals)
	var tmp [binary.MaxVarintLen64]byte
	switch enc {
	case encVarint:
		for _, v := range vals {
			dst.Write(tmp[:binary.PutUvarint(tmp[:], uint64(v))])
		}
	case encZigzag:
		for _, v := range vals {
			dst.Write(tmp[:binary.PutVarint(tmp[:], v)])
		}
	case encDelta:
		prev := int64(0)
		for _, v := range vals {
			dst.Write(tmp[:binary.PutVarint(tmp[:], v-prev)])
			prev = v
		}
	default:
		panic(fmt.Sprintf("colfmt: encoding %d is not an integer encoding", enc))
	}
	return st
}

func intStats(vals []int64) Stats {
	st := Stats{Count: uint32(len(vals))}
	for i, v := range vals {
		if v != 0 {
			st.Nonzero++
		}
		if i == 0 || v < st.Min {
			st.Min = v
		}
		if i == 0 || v > st.Max {
			st.Max = v
		}
	}
	return st
}

// encodeFloats appends vals raw. Min/Max stay zero: they are defined for
// integer columns only.
func encodeFloats(dst *bytes.Buffer, vals []float64) Stats {
	st := Stats{Count: uint32(len(vals))}
	for _, v := range vals {
		if v != 0 {
			st.Nonzero++
		}
		putU64(dst, math.Float64bits(v))
	}
	return st
}

// encodeStrings appends the dictionary block.
func encodeStrings(dst *bytes.Buffer, strs []string) Stats {
	st := Stats{Count: uint32(len(strs))}
	var tmp [binary.MaxVarintLen64]byte
	dst.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(strs)))])
	for _, s := range strs {
		if s != "" {
			st.Nonzero++
		}
		dst.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(s)))])
		dst.WriteString(s)
	}
	return st
}
