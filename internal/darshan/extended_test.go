package darshan

import (
	"testing"

	"iolayers/internal/units"
)

func TestStdioXDisabledByDefault(t *testing.T) {
	rt := NewRuntime(testJob(1))
	rt.Observe(Op{Module: ModuleSTDIO, Path: "/p/a.log", Rank: 0, Kind: OpWrite,
		Size: 4096, Offset: 0, Start: 0, End: 0.1})
	log := rt.Finalize()
	if n := len(log.RecordsFor(ModuleStdioX)); n != 0 {
		t.Errorf("STDIOX records without opt-in: %d", n)
	}
}

func TestStdioXHistograms(t *testing.T) {
	rt := NewRuntime(testJob(1))
	rt.EnableExtendedStdio()
	p := "/p/a.rst"
	rt.Observe(Op{Module: ModuleSTDIO, Path: p, Rank: 0, Kind: OpRead,
		Size: 50, Offset: 0, Start: 0, End: 0.1})
	rt.ObserveN(Op{Module: ModuleSTDIO, Path: p, Rank: 0, Kind: OpWrite,
		Size: 64 * units.KiB, Offset: 0, Start: 0.1, End: 0.5}, 4)
	log := rt.Finalize()
	recs := log.RecordsFor(ModuleStdioX)
	if len(recs) != 1 {
		t.Fatalf("STDIOX records = %d", len(recs))
	}
	r := recs[0]
	if r.Counters[StdioXSizeRead0To100+int(units.Bin0To100)] != 1 {
		t.Errorf("read histogram: %v", r.Counters[:10])
	}
	if r.Counters[StdioXSizeWrite0To100+int(units.Bin10KTo100K)] != 4 {
		t.Errorf("write histogram bin 10K_100K = %d, want 4",
			r.Counters[StdioXSizeWrite0To100+int(units.Bin10KTo100K)])
	}
	// The ordinary STDIO record still has no histogram.
	stdio := log.RecordsFor(ModuleSTDIO)[0]
	if len(stdio.Counters) != NumStdioCounters {
		t.Errorf("plain STDIO record width changed: %d", len(stdio.Counters))
	}
}

func TestStdioXRewriteAccounting(t *testing.T) {
	rt := NewRuntime(testJob(1))
	rt.EnableExtendedStdio()
	p := "/mnt/bb/u/dyn.dat"
	// First write: 0..1MiB — all unique (static data).
	rt.Observe(Op{Module: ModuleSTDIO, Path: p, Rank: 0, Kind: OpWrite,
		Size: units.MiB, Offset: 0, Start: 0, End: 0.1})
	// Rewrite of the first half — all dynamic.
	rt.Observe(Op{Module: ModuleSTDIO, Path: p, Rank: 0, Kind: OpWrite,
		Size: 512 * units.KiB, Offset: 0, Start: 0.2, End: 0.3})
	// Straddling write: 768K..1.25M — 256K rewrite, 256K unique.
	rt.Observe(Op{Module: ModuleSTDIO, Path: p, Rank: 0, Kind: OpWrite,
		Size: 512 * units.KiB, Offset: 768 * 1024, Start: 0.4, End: 0.5})
	log := rt.Finalize()
	r := log.RecordsFor(ModuleStdioX)[0]
	wantRewrite := int64(512*1024 + 256*1024)
	wantUnique := int64(1024*1024 + 256*1024)
	if r.Counters[StdioXRewriteBytes] != wantRewrite {
		t.Errorf("rewrite bytes = %d, want %d", r.Counters[StdioXRewriteBytes], wantRewrite)
	}
	if r.Counters[StdioXUniqueBytes] != wantUnique {
		t.Errorf("unique bytes = %d, want %d", r.Counters[StdioXUniqueBytes], wantUnique)
	}
	// Write 2 rewinds (not sequential); write 3 jumps forward (sequential,
	// not consecutive).
	if r.Counters[StdioXSeqWrites] != 1 || r.Counters[StdioXConsecWrites] != 0 {
		t.Errorf("seq/consec = %d/%d, want 1/0",
			r.Counters[StdioXSeqWrites], r.Counters[StdioXConsecWrites])
	}
}

func TestDXTDisabledByDefault(t *testing.T) {
	rt := NewRuntime(testJob(1))
	rt.Observe(Op{Module: ModulePOSIX, Path: "/p/a", Rank: 0, Kind: OpRead,
		Size: units.KiB, Offset: 0, Start: 0, End: 0.1})
	if log := rt.Finalize(); len(log.DXT) != 0 {
		t.Errorf("DXT traces without opt-in: %d", len(log.DXT))
	}
}

func TestDXTTracesPosixAndMpiioOnly(t *testing.T) {
	rt := NewRuntime(testJob(1))
	rt.EnableDXT(16)
	rt.Observe(Op{Module: ModulePOSIX, Path: "/p/a", Rank: 0, Kind: OpRead,
		Size: units.KiB, Offset: 4096, Start: 1, End: 1.5})
	rt.Observe(Op{Module: ModuleMPIIO, Path: "/p/b", Rank: 0, Kind: OpWrite,
		Size: units.MiB, Offset: 0, Start: 2, End: 2.5})
	rt.Observe(Op{Module: ModuleSTDIO, Path: "/p/c", Rank: 0, Kind: OpWrite,
		Size: 100, Offset: 0, Start: 3, End: 3.1})
	rt.Observe(Op{Module: ModulePOSIX, Path: "/p/a", Rank: 0, Kind: OpOpen,
		Start: 0, End: 0.1}) // opens are not traced
	log := rt.Finalize()
	if len(log.DXT) != 2 {
		t.Fatalf("traces = %d, want 2 (POSIX + MPI-IO, no STDIO)", len(log.DXT))
	}
	for _, tr := range log.DXT {
		if tr.Module == ModuleSTDIO {
			t.Error("DXT traced STDIO — the paper says it never does (§2.2)")
		}
		if len(tr.Segments) != 1 {
			t.Errorf("trace %v has %d segments", tr.Module, len(tr.Segments))
		}
	}
	posixTrace := log.DXT[0]
	if posixTrace.Module != ModulePOSIX {
		t.Fatalf("first trace module = %v", posixTrace.Module)
	}
	s := posixTrace.Segments[0]
	if s.Kind != OpRead || s.Offset != 4096 || s.Length != 1024 || s.Start != 1 || s.End != 1.5 {
		t.Errorf("segment = %+v", s)
	}
}

func TestDXTSegmentLimit(t *testing.T) {
	rt := NewRuntime(testJob(1))
	rt.EnableDXT(3)
	for i := 0; i < 10; i++ {
		rt.Observe(Op{Module: ModulePOSIX, Path: "/p/a", Rank: 0, Kind: OpWrite,
			Size: 100, Offset: int64(i) * 100, Start: float64(i), End: float64(i) + 0.5})
	}
	log := rt.Finalize()
	if len(log.DXT) != 1 || len(log.DXT[0].Segments) != 3 {
		t.Errorf("expected 1 trace capped at 3 segments, got %+v", log.DXT)
	}
}

func TestDXTBatchesRecordOneSegment(t *testing.T) {
	rt := NewRuntime(testJob(1))
	rt.EnableDXT(8)
	rt.ObserveN(Op{Module: ModulePOSIX, Path: "/p/a", Rank: 2, Kind: OpWrite,
		Size: units.MiB, Offset: 0, Start: 0, End: 4}, 16)
	log := rt.Finalize()
	if len(log.DXT) != 1 {
		t.Fatalf("traces = %d", len(log.DXT))
	}
	s := log.DXT[0].Segments[0]
	if s.Length != 16*int64(units.MiB) {
		t.Errorf("batch segment length = %d, want 16 MiB", s.Length)
	}
	if log.DXT[0].Rank != 2 {
		t.Errorf("rank = %d", log.DXT[0].Rank)
	}
}

func TestEnableDXTPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero limit", func() { NewRuntime(testJob(1)).EnableDXT(0) })
	mustPanic("after finalize", func() {
		rt := NewRuntime(testJob(1))
		rt.Finalize()
		rt.EnableDXT(1)
	})
	mustPanic("extended stdio after finalize", func() {
		rt := NewRuntime(testJob(1))
		rt.Finalize()
		rt.EnableExtendedStdio()
	})
}

func TestStdioXModuleTables(t *testing.T) {
	if ModuleStdioX.String() != "STDIOX" {
		t.Errorf("name = %q", ModuleStdioX.String())
	}
	names := CounterNames(ModuleStdioX)
	if len(names) != NumStdioXCounters {
		t.Fatalf("width = %d, want %d", len(names), NumStdioXCounters)
	}
	if names[StdioXSizeRead0To100] != "STDIOX_SIZE_READ_0_100" {
		t.Errorf("first counter = %q", names[StdioXSizeRead0To100])
	}
	if names[StdioXRewriteBytes] != "STDIOX_REWRITE_BYTES" {
		t.Errorf("rewrite counter = %q", names[StdioXRewriteBytes])
	}
	if FCounterNames(ModuleStdioX) != nil {
		t.Error("STDIOX has no float counters")
	}
}

func TestStdioXSharedReduction(t *testing.T) {
	nprocs := 4
	rt := NewRuntime(testJob(nprocs))
	rt.EnableExtendedStdio()
	for rank := int32(0); rank < int32(nprocs); rank++ {
		rt.Observe(Op{Module: ModuleSTDIO, Path: "/p/shared.log", Rank: rank,
			Kind: OpWrite, Size: 4096, Offset: 0, Start: 1, End: 1.1})
	}
	log := rt.Finalize()
	recs := log.RecordsFor(ModuleStdioX)
	if len(recs) != 1 || recs[0].Rank != SharedRank {
		t.Fatalf("STDIOX reduction failed: %+v", recs)
	}
	if got := recs[0].Counters[StdioXSizeWrite0To100+int(units.Bin1KTo10K)]; got != 4 {
		t.Errorf("reduced histogram = %d, want 4", got)
	}
}
