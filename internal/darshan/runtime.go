package darshan

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"iolayers/internal/units"
)

// OpKind enumerates the I/O operations the runtime instruments.
type OpKind int

// Instrumented operation kinds. Read/Write carry sizes; the others are
// metadata operations that contribute to open/close counters and meta time.
const (
	OpOpen OpKind = iota
	OpRead
	OpWrite
	OpSeek
	OpStat
	OpFlush
	OpFsync
	OpClose
)

// String names the operation kind.
func (k OpKind) String() string {
	switch k {
	case OpOpen:
		return "open"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpSeek:
		return "seek"
	case OpStat:
		return "stat"
	case OpFlush:
		return "flush"
	case OpFsync:
		return "fsync"
	case OpClose:
		return "close"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one observed I/O operation, as delivered by the instrumented client.
// Start and End are seconds relative to job start (MPI_Init). Offset is the
// file offset of a read/write, or −1 when unknown; it feeds the
// sequential/consecutive access counters. Collective marks MPI-IO collective
// calls.
//
// Note on layering: as in real Darshan, an application call through MPI-IO
// surfaces as observations at both the MPI-IO and POSIX modules (MPI-IO
// issues POSIX system calls underneath, §3.1); the instrumented client is
// responsible for emitting both, because collective buffering may legally
// change the size and count of the underlying POSIX operations.
type Op struct {
	Module     ModuleID
	Path       string
	Rank       int32
	Kind       OpKind
	Size       units.ByteSize
	Offset     int64
	Start, End float64
	Collective bool
}

type recordKey struct {
	module ModuleID
	id     RecordID
	rank   int32
}

// ioCursor tracks the last byte position of reads/writes per record for the
// sequential/consecutive counters, and the write high-water mark for the
// extended-STDIO rewrite accounting.
type ioCursor struct {
	lastReadEnd    int64
	lastWriteEnd   int64
	anyRead        bool
	anyWrite       bool
	writeHighWater int64
}

// Runtime is the instrumentation core: it accumulates counter records for
// every (module, file, rank) it observes and emits a Log on Finalize. It is
// safe for concurrent use by multiple goroutines (simulated ranks).
type Runtime struct {
	mu        sync.Mutex
	job       JobHeader
	records   map[recordKey]*FileRecord
	cursors   map[recordKey]*ioCursor
	names     map[RecordID]string
	finalized bool

	// extendedStdio mirrors STDIO data operations into the STDIOX module
	// (Recommendation 4); off by default, as on the paper's systems.
	extendedStdio bool
	// dxtLimit, when positive, enables DXT tracing for POSIX and MPI-IO
	// with at most dxtLimit segments per (file, rank) record.
	dxtLimit int
	dxt      map[recordKey][]DXTSegment
}

// NewRuntime starts instrumentation for one application execution. NProcs
// must be at least 1.
func NewRuntime(job JobHeader) *Runtime {
	if job.NProcs < 1 {
		panic(fmt.Sprintf("darshan: job %d has NProcs %d; need >= 1", job.JobID, job.NProcs))
	}
	return &Runtime{
		job:     job,
		records: make(map[recordKey]*FileRecord),
		cursors: make(map[recordKey]*ioCursor),
		names:   make(map[RecordID]string),
	}
}

// Job returns the job header the runtime was created with.
func (rt *Runtime) Job() JobHeader { return rt.job }

// EnableExtendedStdio turns on the STDIOX module for this execution: every
// STDIO read/write also updates an extended record carrying the access-size
// histograms, write sequentiality, and rewrite/unique byte split the paper's
// Recommendation 4 asks monitoring tools to add.
func (rt *Runtime) EnableExtendedStdio() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.finalized {
		panic("darshan: EnableExtendedStdio after Finalize")
	}
	rt.extendedStdio = true
}

// EnableDXT turns on extended tracing for POSIX and MPI-IO operations,
// keeping at most segmentsPerRecord trace segments per (file, rank) record.
// It panics on a non-positive limit: an unbounded trace of a production job
// is a memory bug, not a configuration.
func (rt *Runtime) EnableDXT(segmentsPerRecord int) {
	if segmentsPerRecord <= 0 {
		panic(fmt.Sprintf("darshan: EnableDXT(%d): limit must be positive", segmentsPerRecord))
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.finalized {
		panic("darshan: EnableDXT after Finalize")
	}
	rt.dxtLimit = segmentsPerRecord
	if rt.dxt == nil {
		rt.dxt = make(map[recordKey][]DXTSegment)
	}
}

func (rt *Runtime) record(m ModuleID, path string, rank int32) (*FileRecord, *ioCursor) {
	id := HashPath(path)
	key := recordKey{m, id, rank}
	rec, ok := rt.records[key]
	if !ok {
		rec = NewFileRecord(m, id, rank)
		rt.records[key] = rec
		rt.names[id] = path
	}
	cur, ok := rt.cursors[key]
	if !ok {
		cur = &ioCursor{}
		rt.cursors[key] = cur
	}
	return rec, cur
}

// Observe records one I/O operation. Calling Observe after Finalize panics:
// the log is already sealed, so late observations would be silently lost.
func (rt *Runtime) Observe(op Op) { rt.ObserveN(op, 1) }

// ObserveN records a batch of n identical back-to-back operations in one
// call: counters and byte totals grow by n×, the access-size histogram bin
// gains n, and [op.Start, op.End] covers the whole batch. This is how
// high-volume synthetic workloads stay O(1) per (file, request-class)
// instead of O(requests); the resulting counter record is identical to n
// individual Observe calls on a contiguous run of requests.
func (rt *Runtime) ObserveN(op Op, n int) {
	if n <= 0 {
		panic(fmt.Sprintf("darshan: ObserveN with n=%d", n))
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.finalized {
		panic("darshan: Observe after Finalize")
	}
	if op.End < op.Start {
		panic(fmt.Sprintf("darshan: op %v on %q ends (%v) before it starts (%v)",
			op.Kind, op.Path, op.End, op.Start))
	}
	switch op.Module {
	case ModulePOSIX:
		rt.observePosix(op, n)
		rt.traceDXT(op, n)
	case ModuleMPIIO:
		rt.observeMpiio(op, n)
		rt.traceDXT(op, n)
	case ModuleSTDIO:
		rt.observeStdio(op, n)
		if rt.extendedStdio {
			rt.observeStdioX(op, n)
		}
	default:
		panic(fmt.Sprintf("darshan: cannot observe ops for module %v", op.Module))
	}
}

// traceDXT appends a trace segment for a POSIX/MPI-IO data operation when
// extended tracing is enabled. A batch of n identical requests is recorded
// as one segment covering the batch's byte span and time window.
func (rt *Runtime) traceDXT(op Op, n int) {
	if rt.dxtLimit <= 0 || (op.Kind != OpRead && op.Kind != OpWrite) {
		return
	}
	key := recordKey{op.Module, HashPath(op.Path), op.Rank}
	segs := rt.dxt[key]
	if len(segs) >= rt.dxtLimit {
		return
	}
	offset := op.Offset
	length := int64(n) * int64(op.Size)
	rt.dxt[key] = append(segs, DXTSegment{
		Kind:   op.Kind,
		Offset: offset,
		Length: length,
		Start:  op.Start,
		End:    op.End,
	})
}

// observeStdioX mirrors a STDIO data operation into the extended module.
func (rt *Runtime) observeStdioX(op Op, n int) {
	if op.Kind != OpRead && op.Kind != OpWrite {
		return
	}
	rec, cur := rt.record(ModuleStdioX, op.Path, op.Rank)
	nn := int64(n)
	if op.Kind == OpRead {
		rec.Counters[StdioXSizeRead0To100+int(units.RequestBinFor(op.Size))] += nn
		return
	}
	rec.Counters[StdioXSizeWrite0To100+int(units.RequestBinFor(op.Size))] += nn
	if op.Offset >= 0 {
		end := op.Offset + nn*int64(op.Size)
		// Within the batch, writes 2..n run back to back.
		rec.Counters[StdioXSeqWrites] += nn - 1
		rec.Counters[StdioXConsecWrites] += nn - 1
		if cur.anyWrite {
			if op.Offset == cur.lastWriteEnd {
				rec.Counters[StdioXConsecWrites]++
			}
			if op.Offset >= cur.lastWriteEnd {
				rec.Counters[StdioXSeqWrites]++
			}
		}
		cur.lastWriteEnd = end
		cur.anyWrite = true
		// Static/dynamic split against the file's high-water mark: bytes at
		// or below it are rewrites (dynamic data), bytes extending it are
		// written once (static data).
		written := end - op.Offset
		rewrite := min64(end, cur.writeHighWater) - op.Offset
		if rewrite < 0 {
			rewrite = 0
		}
		rec.Counters[StdioXRewriteBytes] += rewrite
		rec.Counters[StdioXUniqueBytes] += written - rewrite
		if end > cur.writeHighWater {
			cur.writeHighWater = end
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func (rt *Runtime) observePosix(op Op, n int) {
	rec, cur := rt.record(ModulePOSIX, op.Path, op.Rank)
	dur := op.End - op.Start
	nn := int64(n)
	switch op.Kind {
	case OpOpen:
		rec.Counters[PosixOpens] += nn
		setMinTimestamp(rec.FCounters, PosixFOpenStartTimestamp, op.Start)
		setMax(rec.FCounters, PosixFOpenEndTimestamp, op.End)
		rec.FCounters[PosixFMetaTime] += dur
	case OpRead:
		rec.Counters[PosixReads] += nn
		rec.Counters[PosixBytesRead] += nn * int64(op.Size)
		rec.Counters[PosixSizeRead0To100+int(units.RequestBinFor(op.Size))] += nn
		setMinTimestamp(rec.FCounters, PosixFReadStartTimestamp, op.Start)
		setMax(rec.FCounters, PosixFReadEndTimestamp, op.End)
		rec.FCounters[PosixFReadTime] += dur
		if op.Offset >= 0 {
			end := op.Offset + nn*int64(op.Size)
			setMaxInt(rec.Counters, PosixMaxByteRead, end-1)
			// Within the batch, requests 2..n run back to back.
			rec.Counters[PosixConsecReads] += nn - 1
			rec.Counters[PosixSeqReads] += nn - 1
			if cur.anyRead {
				if op.Offset == cur.lastReadEnd {
					rec.Counters[PosixConsecReads]++
				}
				if op.Offset >= cur.lastReadEnd {
					rec.Counters[PosixSeqReads]++
				}
			}
			cur.lastReadEnd = end
			cur.anyRead = true
		}
	case OpWrite:
		rec.Counters[PosixWrites] += nn
		rec.Counters[PosixBytesWritten] += nn * int64(op.Size)
		rec.Counters[PosixSizeWrite0To100+int(units.RequestBinFor(op.Size))] += nn
		setMinTimestamp(rec.FCounters, PosixFWriteStartTimestamp, op.Start)
		setMax(rec.FCounters, PosixFWriteEndTimestamp, op.End)
		rec.FCounters[PosixFWriteTime] += dur
		if op.Offset >= 0 {
			end := op.Offset + nn*int64(op.Size)
			setMaxInt(rec.Counters, PosixMaxByteWritten, end-1)
			rec.Counters[PosixConsecWrites] += nn - 1
			rec.Counters[PosixSeqWrites] += nn - 1
			if cur.anyWrite {
				if op.Offset == cur.lastWriteEnd {
					rec.Counters[PosixConsecWrites]++
				}
				if op.Offset >= cur.lastWriteEnd {
					rec.Counters[PosixSeqWrites]++
				}
			}
			cur.lastWriteEnd = end
			cur.anyWrite = true
		}
	case OpSeek:
		rec.Counters[PosixSeeks] += nn
		rec.FCounters[PosixFMetaTime] += dur
	case OpStat:
		rec.Counters[PosixStats] += nn
		rec.FCounters[PosixFMetaTime] += dur
	case OpFsync:
		rec.Counters[PosixFsyncs] += nn
		rec.FCounters[PosixFMetaTime] += dur
	case OpClose:
		setMax(rec.FCounters, PosixFCloseEndTimestamp, op.End)
		rec.FCounters[PosixFMetaTime] += dur
	case OpFlush:
		// POSIX has no userspace flush; treat as meta time only.
		rec.FCounters[PosixFMetaTime] += dur
	}
	updateSlowest(rec.FCounters, PosixFSlowestRankTime,
		rec.FCounters[PosixFReadTime]+rec.FCounters[PosixFWriteTime]+rec.FCounters[PosixFMetaTime])
}

func (rt *Runtime) observeMpiio(op Op, n int) {
	rec, _ := rt.record(ModuleMPIIO, op.Path, op.Rank)
	dur := op.End - op.Start
	nn := int64(n)
	switch op.Kind {
	case OpOpen:
		if op.Collective {
			rec.Counters[MpiioCollOpens] += nn
		} else {
			rec.Counters[MpiioIndepOpens] += nn
		}
		setMinTimestamp(rec.FCounters, MpiioFOpenStartTimestamp, op.Start)
		setMax(rec.FCounters, MpiioFOpenEndTimestamp, op.End)
		rec.FCounters[MpiioFMetaTime] += dur
	case OpRead:
		if op.Collective {
			rec.Counters[MpiioCollReads] += nn
		} else {
			rec.Counters[MpiioIndepReads] += nn
		}
		rec.Counters[MpiioBytesRead] += nn * int64(op.Size)
		rec.Counters[MpiioSizeRead0To100+int(units.RequestBinFor(op.Size))] += nn
		setMinTimestamp(rec.FCounters, MpiioFReadStartTimestamp, op.Start)
		setMax(rec.FCounters, MpiioFReadEndTimestamp, op.End)
		rec.FCounters[MpiioFReadTime] += dur
	case OpWrite:
		if op.Collective {
			rec.Counters[MpiioCollWrites] += nn
		} else {
			rec.Counters[MpiioIndepWrites] += nn
		}
		rec.Counters[MpiioBytesWritten] += nn * int64(op.Size)
		rec.Counters[MpiioSizeWrite0To100+int(units.RequestBinFor(op.Size))] += nn
		setMinTimestamp(rec.FCounters, MpiioFWriteStartTimestamp, op.Start)
		setMax(rec.FCounters, MpiioFWriteEndTimestamp, op.End)
		rec.FCounters[MpiioFWriteTime] += dur
	case OpClose:
		setMax(rec.FCounters, MpiioFCloseEndTimestamp, op.End)
		rec.FCounters[MpiioFMetaTime] += dur
	default:
		rec.FCounters[MpiioFMetaTime] += dur
	}
	updateSlowest(rec.FCounters, MpiioFSlowestRankTime,
		rec.FCounters[MpiioFReadTime]+rec.FCounters[MpiioFWriteTime]+rec.FCounters[MpiioFMetaTime])
}

func (rt *Runtime) observeStdio(op Op, n int) {
	rec, _ := rt.record(ModuleSTDIO, op.Path, op.Rank)
	dur := op.End - op.Start
	nn := int64(n)
	switch op.Kind {
	case OpOpen:
		rec.Counters[StdioOpens] += nn
		setMinTimestamp(rec.FCounters, StdioFOpenStartTimestamp, op.Start)
		setMax(rec.FCounters, StdioFOpenEndTimestamp, op.End)
		rec.FCounters[StdioFMetaTime] += dur
	case OpRead:
		rec.Counters[StdioReads] += nn
		rec.Counters[StdioBytesRead] += nn * int64(op.Size)
		setMinTimestamp(rec.FCounters, StdioFReadStartTimestamp, op.Start)
		setMax(rec.FCounters, StdioFReadEndTimestamp, op.End)
		rec.FCounters[StdioFReadTime] += dur
		if op.Offset >= 0 {
			setMaxInt(rec.Counters, StdioMaxByteRead, op.Offset+nn*int64(op.Size)-1)
		}
		// Deliberately no size-histogram update: the STDIO module records
		// no per-request size bins (paper §2.2, Recommendation 4).
	case OpWrite:
		rec.Counters[StdioWrites] += nn
		rec.Counters[StdioBytesWritten] += nn * int64(op.Size)
		setMinTimestamp(rec.FCounters, StdioFWriteStartTimestamp, op.Start)
		setMax(rec.FCounters, StdioFWriteEndTimestamp, op.End)
		rec.FCounters[StdioFWriteTime] += dur
		if op.Offset >= 0 {
			setMaxInt(rec.Counters, StdioMaxByteWritten, op.Offset+nn*int64(op.Size)-1)
		}
	case OpSeek:
		rec.Counters[StdioSeeks] += nn
		rec.FCounters[StdioFMetaTime] += dur
	case OpFlush:
		rec.Counters[StdioFlushes] += nn
		rec.FCounters[StdioFMetaTime] += dur
	case OpClose:
		setMax(rec.FCounters, StdioFCloseEndTimestamp, op.End)
		rec.FCounters[StdioFMetaTime] += dur
	default:
		rec.FCounters[StdioFMetaTime] += dur
	}
	updateSlowest(rec.FCounters, StdioFSlowestRankTime,
		rec.FCounters[StdioFReadTime]+rec.FCounters[StdioFWriteTime]+rec.FCounters[StdioFMetaTime])
}

// SetLustreStriping records the Lustre module's striping metadata for a file
// residing on a Lustre mount. Rank is always SharedRank for Lustre records,
// matching Darshan's one-record-per-file convention.
func (rt *Runtime) SetLustreStriping(path string, osts, mdts, stripeOffset int, stripeSize units.ByteSize, stripeWidth int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.finalized {
		panic("darshan: SetLustreStriping after Finalize")
	}
	rec, _ := rt.record(ModuleLustre, path, SharedRank)
	rec.Counters[LustreOSTs] = int64(osts)
	rec.Counters[LustreMDTs] = int64(mdts)
	rec.Counters[LustreStripeOffset] = int64(stripeOffset)
	rec.Counters[LustreStripeSize] = int64(stripeSize)
	rec.Counters[LustreStripeWidth] = int64(stripeWidth)
}

// Finalize seals the runtime, performs the shared-file reduction (records
// present for every rank of the job collapse into one rank −1 record), and
// returns the finished Log. Finalize may be called once; later calls panic.
func (rt *Runtime) Finalize() *Log {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.finalized {
		panic("darshan: Finalize called twice")
	}
	rt.finalized = true

	// Group per (module, record id).
	type group struct {
		ranks []*FileRecord
	}
	groups := make(map[recordKey]*group) // key.rank fixed at 0 for grouping
	for key, rec := range rt.records {
		gk := recordKey{key.module, key.id, 0}
		g, ok := groups[gk]
		if !ok {
			g = &group{}
			groups[gk] = g
		}
		g.ranks = append(g.ranks, rec)
	}

	var out []*FileRecord
	for _, g := range groups {
		out = append(out, reduceGroup(g.ranks, rt.job.NProcs)...)
	}
	// Deterministic order: by module, then record id, then rank.
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Module != b.Module {
			return a.Module < b.Module
		}
		if a.Record != b.Record {
			return a.Record < b.Record
		}
		return a.Rank < b.Rank
	})

	names := make(map[RecordID]string, len(rt.names))
	for id, p := range rt.names {
		names[id] = p
	}

	var traces []DXTTrace
	for key, segs := range rt.dxt {
		traces = append(traces, DXTTrace{
			Module:   key.module,
			Record:   key.id,
			Rank:     key.rank,
			Segments: segs,
		})
	}
	sort.Slice(traces, func(i, j int) bool {
		a, b := traces[i], traces[j]
		if a.Module != b.Module {
			return a.Module < b.Module
		}
		if a.Record != b.Record {
			return a.Record < b.Record
		}
		return a.Rank < b.Rank
	})

	return &Log{Job: rt.job, Names: names, Records: out, DXT: traces}
}

// reduceGroup collapses the per-rank records of one (module, file) pair into
// a single SharedRank record when every rank of the job contributed,
// mirroring Darshan's shared-file reduction. Pre-reduced SharedRank records
// pass through; partial rank sets are kept as distinct per-rank records
// (the paper's §3.4 explains why such files are excluded from performance
// analysis).
func reduceGroup(recs []*FileRecord, nprocs int) []*FileRecord {
	if len(recs) == 1 {
		return recs
	}
	ranks := make(map[int32]bool, len(recs))
	for _, r := range recs {
		ranks[r.Rank] = true
	}
	covered := len(ranks) == nprocs && !ranks[SharedRank]
	if covered {
		for r := int32(0); r < int32(nprocs); r++ {
			if !ranks[r] {
				covered = false
				break
			}
		}
	}
	if !covered {
		return recs
	}
	red := NewFileRecord(recs[0].Module, recs[0].Record, SharedRank)
	for i := range red.FCounters {
		red.FCounters[i] = math.NaN() // sentinel: unset
	}
	var slowest float64
	for _, r := range recs {
		mergeCounters(red, r)
		if t := rankTotalTime(r); t > slowest {
			slowest = t
		}
	}
	for i, v := range red.FCounters {
		if math.IsNaN(v) {
			red.FCounters[i] = 0
		}
	}
	setSlowestRankTime(red, slowest)
	return []*FileRecord{red}
}

// mergeCounters folds src into the reduced dst: integer counters sum except
// MAX_BYTE_* which take the max; float timestamps take min (starts) / max
// (ends); float times sum.
func mergeCounters(dst, src *FileRecord) {
	maxCounters := maxByteCounterIndexes(dst.Module)
	for i, v := range src.Counters {
		if maxCounters[i] {
			if v > dst.Counters[i] {
				dst.Counters[i] = v
			}
		} else {
			dst.Counters[i] += v
		}
	}
	starts, ends, times := fCounterRoles(dst.Module)
	for i, v := range src.FCounters {
		switch {
		case starts[i]:
			// min of set values; zero means "never set" in the source.
			if v != 0 && (math.IsNaN(dst.FCounters[i]) || v < dst.FCounters[i]) {
				dst.FCounters[i] = v
			}
		case ends[i]:
			if math.IsNaN(dst.FCounters[i]) || v > dst.FCounters[i] {
				dst.FCounters[i] = v
			}
		case times[i]:
			if math.IsNaN(dst.FCounters[i]) {
				dst.FCounters[i] = 0
			}
			dst.FCounters[i] += v
		}
	}
}

func maxByteCounterIndexes(m ModuleID) map[int]bool {
	switch m {
	case ModulePOSIX:
		return map[int]bool{PosixMaxByteRead: true, PosixMaxByteWritten: true}
	case ModuleSTDIO:
		return map[int]bool{StdioMaxByteRead: true, StdioMaxByteWritten: true}
	default:
		return map[int]bool{}
	}
}

// fCounterRoles classifies each float counter of a module as a start
// timestamp, end timestamp, or accumulated time. The three interface modules
// share the same layout by construction.
func fCounterRoles(m ModuleID) (starts, ends, times map[int]bool) {
	switch m {
	case ModulePOSIX, ModuleMPIIO, ModuleSTDIO:
		// Identical index layout across the three interface modules.
		starts = map[int]bool{
			PosixFOpenStartTimestamp:  true,
			PosixFReadStartTimestamp:  true,
			PosixFWriteStartTimestamp: true,
		}
		ends = map[int]bool{
			PosixFOpenEndTimestamp:  true,
			PosixFReadEndTimestamp:  true,
			PosixFWriteEndTimestamp: true,
			PosixFCloseEndTimestamp: true,
		}
		times = map[int]bool{
			PosixFReadTime:  true,
			PosixFWriteTime: true,
			PosixFMetaTime:  true,
		}
		return starts, ends, times
	default:
		return map[int]bool{}, map[int]bool{}, map[int]bool{}
	}
}

func rankTotalTime(r *FileRecord) float64 {
	switch r.Module {
	case ModulePOSIX:
		return r.FCounters[PosixFReadTime] + r.FCounters[PosixFWriteTime] + r.FCounters[PosixFMetaTime]
	case ModuleMPIIO:
		return r.FCounters[MpiioFReadTime] + r.FCounters[MpiioFWriteTime] + r.FCounters[MpiioFMetaTime]
	case ModuleSTDIO:
		return r.FCounters[StdioFReadTime] + r.FCounters[StdioFWriteTime] + r.FCounters[StdioFMetaTime]
	default:
		return 0
	}
}

func setSlowestRankTime(r *FileRecord, t float64) {
	switch r.Module {
	case ModulePOSIX:
		r.FCounters[PosixFSlowestRankTime] = t
	case ModuleMPIIO:
		r.FCounters[MpiioFSlowestRankTime] = t
	case ModuleSTDIO:
		r.FCounters[StdioFSlowestRankTime] = t
	}
}

func setMinTimestamp(f []float64, idx int, v float64) {
	if f[idx] == 0 || v < f[idx] {
		f[idx] = v
	}
}

func setMax(f []float64, idx int, v float64) {
	if v > f[idx] {
		f[idx] = v
	}
}

func setMaxInt(c []int64, idx int, v int64) {
	if v > c[idx] {
		c[idx] = v
	}
}

func updateSlowest(f []float64, idx int, total float64) {
	if total > f[idx] {
		f[idx] = total
	}
}
