package logfmt

import (
	"bytes"
	"reflect"
	"testing"

	"iolayers/internal/darshan"
	"iolayers/internal/units"
)

func dxtLog() *darshan.Log {
	rt := darshan.NewRuntime(darshan.JobHeader{
		JobID: 99, UserID: 1, NProcs: 2, StartTime: 0, EndTime: 100,
	})
	rt.EnableDXT(8)
	rt.EnableExtendedStdio()
	rt.Observe(darshan.Op{Module: darshan.ModulePOSIX, Path: "/p/a.bin", Rank: 0,
		Kind: darshan.OpRead, Size: 64 * units.KiB, Offset: 1 << 20, Start: 1, End: 1.25})
	rt.ObserveN(darshan.Op{Module: darshan.ModuleMPIIO, Path: "/p/b.nc", Rank: 1,
		Kind: darshan.OpWrite, Size: units.MiB, Offset: 0, Start: 2, End: 3}, 4)
	rt.Observe(darshan.Op{Module: darshan.ModuleSTDIO, Path: "/p/c.log", Rank: 0,
		Kind: darshan.OpWrite, Size: 200, Offset: 0, Start: 4, End: 4.1})
	return rt.Finalize()
}

func TestDXTRoundTrip(t *testing.T) {
	log := dxtLog()
	if len(log.DXT) != 2 {
		t.Fatalf("precondition: %d traces", len(log.DXT))
	}
	var buf bytes.Buffer
	if err := Write(&buf, log); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.DXT, log.DXT) {
		t.Errorf("DXT mismatch:\n got %+v\nwant %+v", got.DXT, log.DXT)
	}
}

func TestStdioXRecordsRoundTrip(t *testing.T) {
	log := dxtLog()
	var buf bytes.Buffer
	if err := Write(&buf, log); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := log.RecordsFor(darshan.ModuleStdioX)
	have := got.RecordsFor(darshan.ModuleStdioX)
	if len(want) != 1 || len(have) != 1 {
		t.Fatalf("STDIOX records: wrote %d, read %d", len(want), len(have))
	}
	if !reflect.DeepEqual(want[0].Counters, have[0].Counters) {
		t.Errorf("counters mismatch: %v vs %v", have[0].Counters, want[0].Counters)
	}
}

func TestLogWithoutDXTHasNoDXTSection(t *testing.T) {
	var withBuf, withoutBuf bytes.Buffer
	if err := Write(&withBuf, dxtLog()); err != nil {
		t.Fatal(err)
	}
	plain := sampleLog()
	if err := Write(&withoutBuf, plain); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&withoutBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.DXT) != 0 {
		t.Errorf("plain log decoded with %d DXT traces", len(got.DXT))
	}
}

// Forward compatibility: an unknown section type must be skipped, with the
// rest of the log intact.
func TestUnknownSectionTypeSkipped(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, dxtLog()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// The DXT section is the last one; rewrite its type byte to something
	// from the future. Find it by scanning section frames.
	off := 8 // file header
	var lastSectionOff int
	for off < len(b) {
		lastSectionOff = off
		compressedLen := int(uint32(b[off+6]) | uint32(b[off+7])<<8 | uint32(b[off+8])<<16 | uint32(b[off+9])<<24)
		off += 14 + compressedLen
	}
	if b[lastSectionOff] != sectionDXT {
		t.Fatalf("expected trailing DXT section, found type %d", b[lastSectionOff])
	}
	b[lastSectionOff] = 200 // unknown future section type
	got, err := Read(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("reader failed on unknown section: %v", err)
	}
	if len(got.DXT) != 0 {
		t.Error("unknown section was decoded as DXT")
	}
	if got.Job.JobID != 99 || len(got.Records) == 0 {
		t.Error("known sections lost when skipping unknown one")
	}
}

func TestCorruptDXTSegmentCountRejected(t *testing.T) {
	// A DXT payload claiming more segments than bytes must be rejected
	// without huge allocation.
	traces := []darshan.DXTTrace{{
		Module: darshan.ModulePOSIX, Record: 1, Rank: 0,
		Segments: []darshan.DXTSegment{{Kind: darshan.OpRead, Length: 10}},
	}}
	e := encoder{buf: &bytes.Buffer{}}
	encodeDXT(&e, traces)
	payload := e.buf.Bytes()
	// Segment count lives after count(4)+module(1)+record(8)+rank(4).
	payload[4+1+8+4] = 0xFF
	payload[4+1+8+4+1] = 0xFF
	if _, err := decodeDXT(payload, DefaultLimits(), 0); err == nil {
		t.Error("expected error for inflated segment count")
	}
}
