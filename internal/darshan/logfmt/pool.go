package logfmt

import (
	"bufio"
	"bytes"
	"compress/zlib"
	"fmt"
	"io"
	"sync"
)

// Codec pooling. A campaign-scale ingest touches millions of logs, each a
// handful of sections, and every section used to pay for a fresh
// bytes.Buffer plus a fresh zlib writer or reader — the deflate/inflate
// state alone is tens of kilobytes per codec. All of that state is
// Reset-able, so writers and readers share it through the pools below:
// Write and Read acquire one pooled state per call and the per-section cost
// amortizes to (almost) zero steady-state allocations.

// maxPooledBuf caps the scratch capacity a pool will retain. A one-off
// giant section should not pin its buffer forever.
const maxPooledBuf = 8 << 20

// bufPool holds scratch byte buffers shared by section encoding,
// compression, and archive framing.
var bufPool = sync.Pool{New: func() any { bufNews.Add(1); return new(bytes.Buffer) }}

func getBuf() *bytes.Buffer {
	bufGets.Add(1)
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putBuf(b *bytes.Buffer) {
	if b.Cap() <= maxPooledBuf {
		bufPool.Put(b)
	}
}

// zlibWriterPool holds Reset-able deflate state. Entries are created
// against io.Discard and re-targeted with Reset before every use.
var zlibWriterPool = sync.Pool{New: func() any { zlibNews.Add(1); return zlib.NewWriter(io.Discard) }}

func getZlibWriter(w io.Writer) *zlib.Writer {
	zlibGets.Add(1)
	zw := zlibWriterPool.Get().(*zlib.Writer)
	zw.Reset(w)
	return zw
}

func putZlibWriter(zw *zlib.Writer) { zlibWriterPool.Put(zw) }

// bufioWriterPool holds the per-Write output buffer. Writes into an
// in-memory *bytes.Buffer (the archive Append path and every benchmark)
// skip it entirely — buffering a buffer is pure overhead.
var bufioWriterPool = sync.Pool{New: func() any { bwNews.Add(1); return bufio.NewWriter(io.Discard) }}

// buffered returns a buffered view of w plus a flush func. The release of
// the pooled bufio.Writer happens inside flush, so callers must call it
// exactly once on the success path (error paths may skip it; the writer is
// re-pooled by the next Get's Reset).
func buffered(w io.Writer) (io.Writer, func() error) {
	if bb, ok := w.(*bytes.Buffer); ok {
		return bb, func() error { return nil }
	}
	bwGets.Add(1)
	bw := bufioWriterPool.Get().(*bufio.Writer)
	bw.Reset(w)
	return bw, func() error {
		err := bw.Flush()
		bw.Reset(io.Discard) // drop the reference to w before pooling
		bufioWriterPool.Put(bw)
		if err != nil {
			return fmt.Errorf("logfmt: flushing: %w", err)
		}
		return nil
	}
}

// readState is the reusable scratch a single Read call threads through its
// sections: the section header, the raw compressed bytes, the inflated
// payload, and the inflate state itself. Payload slices handed out by
// readSection are valid only until the next readSection call; every decoder
// copies what it keeps (strings via string(), numbers by value), so nothing
// escapes.
type readState struct {
	hdr        [14]byte
	compressed []byte
	payload    []byte
	br         bytes.Reader
	zr         io.ReadCloser // also a zlib.Resetter once created
}

var readStatePool = sync.Pool{New: func() any { readNews.Add(1); return new(readState) }}

func getReadState() *readState {
	readGets.Add(1)
	return readStatePool.Get().(*readState)
}
func putReadState(rs *readState) {
	if cap(rs.compressed) > maxPooledBuf || cap(rs.payload) > maxPooledBuf {
		return
	}
	readStatePool.Put(rs)
}

// grow returns s resized to n bytes, reallocating only when capacity is
// insufficient. Contents are unspecified.
func grow(s []byte, n int) []byte {
	if cap(s) < n {
		return make([]byte, n)
	}
	return s[:n]
}

// reset re-targets the pooled inflater at the compressed scratch, creating
// it on first use.
func (rs *readState) resetInflater() error {
	rs.br.Reset(rs.compressed)
	if rs.zr == nil {
		zr, err := zlib.NewReader(&rs.br)
		if err != nil {
			return err
		}
		rs.zr = zr
		return nil
	}
	return rs.zr.(zlib.Resetter).Reset(&rs.br, nil)
}
