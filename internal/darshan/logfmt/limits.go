package logfmt

import (
	"errors"
	"fmt"
)

// Untrusted-input hardening. Production Darshan corpora are hostile in
// practice: year-long collections contain truncated logs (node crashes
// mid-flush), corrupt sections (bit rot, interrupted copies), and — once
// logs cross administrative boundaries — potentially adversarial files. The
// decoder therefore treats every length, count, and size field as
// attacker-controlled: allocations are bounded by what the payload could
// actually hold, decompression is bounded by DecodeLimits (a zlib bomb
// cannot inflate past the configured ceiling), and every failure carries a
// structured *DecodeError locating and classifying the damage.

// ErrLimit marks input rejected because it exceeds a DecodeLimits bound.
// The input may be well-formed; it is simply larger than the reader is
// willing to decode.
var ErrLimit = errors.New("logfmt: decode limit exceeded")

// DecodeLimits bounds what Read and ArchiveReader will allocate and decode
// on behalf of an untrusted input. The zero value is not useful; start from
// DefaultLimits and tighten.
type DecodeLimits struct {
	// MaxSectionBytes caps one section's declared uncompressed size — the
	// zlib-bomb bound: a section claiming more inflates nothing and is
	// rejected up front.
	MaxSectionBytes int
	// MaxCompressedBytes caps one section's compressed payload.
	MaxCompressedBytes int
	// MaxRecords caps the record count of one module section.
	MaxRecords int
	// MaxNames caps the name-table entry count of one names section.
	MaxNames int
	// MaxDXTTraces and MaxDXTSegments cap extended-tracing sections: traces
	// per section and segments per trace.
	MaxDXTTraces   int
	MaxDXTSegments int
	// MaxStringLen caps one decoded string (paths, counter names, metadata).
	MaxStringLen int
	// MaxMetadataPairs caps the job header's metadata map.
	MaxMetadataPairs int
	// MaxArchiveEntry caps one embedded log inside a campaign archive.
	MaxArchiveEntry int
}

// DefaultLimits returns the bounds enforced when the caller does not choose
// their own: generous enough for any log this repository's runtime emits,
// small enough that a crafted file cannot force multi-gigabyte allocations.
func DefaultLimits() DecodeLimits {
	return DecodeLimits{
		MaxSectionBytes:    256 << 20,
		MaxCompressedBytes: 256 << 20,
		MaxRecords:         4 << 20,
		MaxNames:           8 << 20,
		MaxDXTTraces:       1 << 20,
		MaxDXTSegments:     1 << 20,
		MaxStringLen:       maxStringLen,
		MaxMetadataPairs:   1 << 12,
		MaxArchiveEntry:    maxArchiveEntry,
	}
}

// sanitize fills zero fields from the defaults so a partially-specified
// DecodeLimits cannot accidentally mean "unlimited" (or "nothing decodes").
func (l DecodeLimits) sanitize() DecodeLimits {
	d := DefaultLimits()
	if l.MaxSectionBytes <= 0 {
		l.MaxSectionBytes = d.MaxSectionBytes
	}
	if l.MaxCompressedBytes <= 0 {
		l.MaxCompressedBytes = d.MaxCompressedBytes
	}
	if l.MaxRecords <= 0 {
		l.MaxRecords = d.MaxRecords
	}
	if l.MaxNames <= 0 {
		l.MaxNames = d.MaxNames
	}
	if l.MaxDXTTraces <= 0 {
		l.MaxDXTTraces = d.MaxDXTTraces
	}
	if l.MaxDXTSegments <= 0 {
		l.MaxDXTSegments = d.MaxDXTSegments
	}
	if l.MaxStringLen <= 0 {
		l.MaxStringLen = d.MaxStringLen
	}
	if l.MaxMetadataPairs <= 0 {
		l.MaxMetadataPairs = d.MaxMetadataPairs
	}
	if l.MaxArchiveEntry <= 0 {
		l.MaxArchiveEntry = d.MaxArchiveEntry
	}
	return l
}

// ErrorKind classifies a decode failure.
type ErrorKind int

// The decode-error taxonomy. Truncated means the input ends before the
// structure it promised; Corrupt means the bytes are present but wrong (CRC
// mismatch, impossible counts, malformed payloads); LimitExceeded means the
// input demands more than the configured DecodeLimits allow; BadMagic and
// BadVersion reject inputs that are not (this version of) the format.
const (
	KindTruncated ErrorKind = iota
	KindCorrupt
	KindLimitExceeded
	KindBadMagic
	KindBadVersion
)

// String names the kind.
func (k ErrorKind) String() string {
	switch k {
	case KindTruncated:
		return "truncated"
	case KindCorrupt:
		return "corrupt"
	case KindLimitExceeded:
		return "limit-exceeded"
	case KindBadMagic:
		return "bad-magic"
	case KindBadVersion:
		return "bad-version"
	default:
		return fmt.Sprintf("ErrorKind(%d)", int(k))
	}
}

// sentinel maps the kind to the package's sentinel error, which is what
// errors.Is matches through a *DecodeError.
func (k ErrorKind) sentinel() error {
	switch k {
	case KindTruncated:
		return ErrTruncated
	case KindCorrupt:
		return ErrCorrupt
	case KindLimitExceeded:
		return ErrLimit
	case KindBadMagic:
		return ErrBadMagic
	case KindBadVersion:
		return ErrVersion
	default:
		return ErrCorrupt
	}
}

// DecodeError is the structured error every decode failure resolves to: the
// kind of damage, the section (or archive structure) it was found in, the
// byte offset of that structure in the input stream, and detail. It unwraps
// to the matching sentinel (ErrTruncated, ErrCorrupt, ErrLimit, ErrBadMagic,
// ErrVersion), so errors.Is-based callers keep working.
type DecodeError struct {
	// Kind classifies the failure.
	Kind ErrorKind
	// Section names where the failure was found: "header", "job", "names",
	// "module", "dxt", "section" (an unclassified section), or for archives
	// "archive-header", "entry", "entry-frame".
	Section string
	// Offset is the byte offset in the input stream where the damaged
	// structure starts (-1 when unknown).
	Offset int64
	// Detail describes the specific failure.
	Detail string
}

// Error renders kind, location, and detail.
func (e *DecodeError) Error() string {
	if e.Offset >= 0 {
		return fmt.Sprintf("logfmt: %s %s at offset %d: %s", e.Kind, e.Section, e.Offset, e.Detail)
	}
	return fmt.Sprintf("logfmt: %s %s: %s", e.Kind, e.Section, e.Detail)
}

// Unwrap maps the kind onto the package sentinel so existing
// errors.Is(err, ErrCorrupt)-style checks see through the structure.
func (e *DecodeError) Unwrap() error { return e.Kind.sentinel() }

// decodeErrf builds a *DecodeError with formatted detail.
func decodeErrf(kind ErrorKind, section string, offset int64, format string, args ...any) *DecodeError {
	return &DecodeError{Kind: kind, Section: section, Offset: offset,
		Detail: fmt.Sprintf(format, args...)}
}

// asDecodeError normalizes err to a *DecodeError: structured errors pass
// through; sentinel-wrapped errors are classified by errors.Is; anything
// else is corrupt. Used at the archive boundary so the streaming and
// recovery paths report identical kinds for identical damage.
func asDecodeError(err error, section string, offset int64) *DecodeError {
	var de *DecodeError
	if errors.As(err, &de) {
		return de
	}
	kind := KindCorrupt
	switch {
	case errors.Is(err, ErrTruncated):
		kind = KindTruncated
	case errors.Is(err, ErrLimit):
		kind = KindLimitExceeded
	case errors.Is(err, ErrBadMagic):
		kind = KindBadMagic
	case errors.Is(err, ErrVersion):
		kind = KindBadVersion
	}
	return &DecodeError{Kind: kind, Section: section, Offset: offset, Detail: err.Error()}
}
