package logfmt

import (
	"errors"
	"sync/atomic"

	"iolayers/internal/obsv"
)

// Self-instrumentation for the codec pools. The tallies are package globals
// (the pools are), monotone, and scheduling-dependent: whether a Get hits
// pooled state depends on GC timing and goroutine interleaving. They are
// therefore published as gauges — volatile by definition — never as
// deterministic counters.
var (
	bufGets  atomic.Int64
	bufNews  atomic.Int64
	readGets atomic.Int64
	readNews atomic.Int64
	zlibGets atomic.Int64
	zlibNews atomic.Int64
	bwGets   atomic.Int64
	bwNews   atomic.Int64
)

// PublishMetrics copies the codec-pool tallies into the registry as
// "logfmt.pool.*" gauges: raw get counts plus the steady-state hit rate
// (1 − news/gets). A nil registry is a no-op.
func PublishMetrics(r *obsv.Registry) {
	if r == nil {
		return
	}
	pub := func(name string, gets, news int64) {
		r.Gauge("logfmt.pool." + name + ".gets").Set(float64(gets))
		r.Gauge("logfmt.pool." + name + ".hit_rate").Set(hitRate(gets, news))
	}
	pub("buf", bufGets.Load(), bufNews.Load())
	pub("readstate", readGets.Load(), readNews.Load())
	pub("zlib_writer", zlibGets.Load(), zlibNews.Load())
	pub("bufio_writer", bwGets.Load(), bwNews.Load())
}

func hitRate(gets, news int64) float64 {
	if gets == 0 {
		return 0
	}
	return 1 - float64(news)/float64(gets)
}

// KindOf classifies err by its DecodeError kind. The second return is false
// when err carries no *DecodeError (I/O errors, context cancellation).
// Ingest layers use this to keep per-run decode-failure counters keyed by
// kind without reaching into package internals.
func KindOf(err error) (ErrorKind, bool) {
	var de *DecodeError
	if errors.As(err, &de) {
		return de.Kind, true
	}
	return 0, false
}
