package logfmt

import (
	"errors"
	"fmt"
	"testing"

	"iolayers/internal/obsv"
)

func TestKindOf(t *testing.T) {
	for _, k := range []ErrorKind{KindTruncated, KindCorrupt, KindLimitExceeded, KindBadMagic, KindBadVersion} {
		err := fmt.Errorf("wrapped: %w", decodeErrf(k, "module", 42, "boom"))
		got, ok := KindOf(err)
		if !ok || got != k {
			t.Errorf("KindOf(%v) = %v, %v", err, got, ok)
		}
	}
	if _, ok := KindOf(errors.New("plain I/O error")); ok {
		t.Error("plain error classified as a decode error")
	}
	if _, ok := KindOf(nil); ok {
		t.Error("nil classified as a decode error")
	}
}

func TestPublishMetrics(t *testing.T) {
	PublishMetrics(nil) // nil registry must be a no-op

	// Drive the pools at least once so gets are non-zero no matter what
	// ran before this test.
	b := getBuf()
	putBuf(b)
	rs := getReadState()
	putReadState(rs)

	r := obsv.New()
	PublishMetrics(r)
	snap := r.Snapshot()
	names := map[string]float64{}
	for _, g := range snap.Gauges {
		names[g.Name] = g.Value
	}
	for _, want := range []string{
		"logfmt.pool.buf.gets", "logfmt.pool.buf.hit_rate",
		"logfmt.pool.readstate.gets", "logfmt.pool.readstate.hit_rate",
		"logfmt.pool.zlib_writer.gets", "logfmt.pool.bufio_writer.gets",
	} {
		if _, ok := names[want]; !ok {
			t.Errorf("PublishMetrics missing gauge %q; have %v", want, names)
		}
	}
	if names["logfmt.pool.buf.gets"] < 1 {
		t.Errorf("buf gets = %v, want ≥ 1", names["logfmt.pool.buf.gets"])
	}
	if hr := names["logfmt.pool.buf.hit_rate"]; hr < 0 || hr > 1 {
		t.Errorf("hit rate %v outside [0,1]", hr)
	}
	// Pool tallies must never land in the deterministic slice: a stripped
	// snapshot carries none of them.
	if stripped := r.Snapshot().StripVolatile(); len(stripped.Gauges) != 0 {
		t.Errorf("pool gauges survived StripVolatile: %+v", stripped.Gauges)
	}
}
