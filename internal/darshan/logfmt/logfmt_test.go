package logfmt

import (
	"bytes"
	"errors"
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"iolayers/internal/darshan"
	"iolayers/internal/units"
)

func sampleLog() *darshan.Log {
	rt := darshan.NewRuntime(darshan.JobHeader{
		JobID:     4242,
		UserID:    99,
		NProcs:    4,
		StartTime: 1577836800,
		EndTime:   1577840400,
		Exe:       "/sw/summit/app.x",
		Metadata:  map[string]string{"project": "CSC123", "domain": "Physics"},
	})
	for rank := int32(0); rank < 4; rank++ {
		rt.Observe(darshan.Op{Module: darshan.ModulePOSIX, Path: "/gpfs/alpine/shared.h5",
			Rank: rank, Kind: darshan.OpWrite, Size: 16 * units.MiB, Offset: int64(rank) * 16 << 20,
			Start: 1, End: 2})
	}
	rt.Observe(darshan.Op{Module: darshan.ModuleSTDIO, Path: "/gpfs/alpine/out.log",
		Rank: 0, Kind: darshan.OpWrite, Size: 4096, Offset: 0, Start: 3, End: 3.1})
	rt.Observe(darshan.Op{Module: darshan.ModuleMPIIO, Path: "/gpfs/alpine/shared.h5",
		Rank: darshan.SharedRank, Kind: darshan.OpWrite, Collective: true, Size: 64 * units.MiB,
		Start: 1, End: 2})
	rt.SetLustreStriping("/lustre/f.bin", 248, 1, 3, units.MiB, 4)
	return rt.Finalize()
}

func roundTrip(t *testing.T, log *darshan.Log) *darshan.Log {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, log); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return got
}

func TestRoundTripJobHeader(t *testing.T) {
	log := sampleLog()
	got := roundTrip(t, log)
	if !reflect.DeepEqual(got.Job, log.Job) {
		t.Errorf("job header mismatch:\n got %+v\nwant %+v", got.Job, log.Job)
	}
}

func TestRoundTripNames(t *testing.T) {
	log := sampleLog()
	got := roundTrip(t, log)
	if !reflect.DeepEqual(got.Names, log.Names) {
		t.Errorf("name table mismatch:\n got %v\nwant %v", got.Names, log.Names)
	}
}

func TestRoundTripRecords(t *testing.T) {
	log := sampleLog()
	got := roundTrip(t, log)
	if len(got.Records) != len(log.Records) {
		t.Fatalf("record count %d, want %d", len(got.Records), len(log.Records))
	}
	for i := range log.Records {
		w, g := log.Records[i], got.Records[i]
		if w.Module != g.Module || w.Record != g.Record || w.Rank != g.Rank {
			t.Errorf("record %d identity mismatch: got (%v,%d,%d) want (%v,%d,%d)",
				i, g.Module, g.Record, g.Rank, w.Module, w.Record, w.Rank)
		}
		if !reflect.DeepEqual(w.Counters, g.Counters) {
			t.Errorf("record %d counters mismatch:\n got %v\nwant %v", i, g.Counters, w.Counters)
		}
		if !reflect.DeepEqual(w.FCounters, g.FCounters) {
			t.Errorf("record %d fcounters mismatch:\n got %v\nwant %v", i, g.FCounters, w.FCounters)
		}
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "job.darshan")
	log := sampleLog()
	if err := WriteFile(path, log); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got.Job.JobID != log.Job.JobID || len(got.Records) != len(log.Records) {
		t.Errorf("file round trip mismatch")
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.darshan")); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestBadMagic(t *testing.T) {
	_, err := Read(bytes.NewReader([]byte("NOPExxxxxxxxxxxxxxxx")))
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleLog()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 0xFF // version low byte
	_, err := Read(bytes.NewReader(b))
	if !errors.Is(err, ErrVersion) {
		t.Errorf("err = %v, want ErrVersion", err)
	}
}

func TestTruncatedLog(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleLog()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for _, cut := range []int{2, 7, 20, len(b) / 2, len(b) - 3} {
		_, err := Read(bytes.NewReader(b[:cut]))
		if err == nil {
			t.Errorf("cut=%d: expected error for truncated log", cut)
		}
	}
}

func TestCorruptPayloadDetectedByCRC(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleLog()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Flip one byte in the middle of the first section payload (after the
	// 8-byte file header and 14-byte section header).
	b[8+14+5] ^= 0x40
	_, err := Read(bytes.NewReader(b))
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

// Fuzz-adjacent robustness property: random corruption of a valid log must
// never panic the reader; it must return either an error or a parsed log.
func TestRandomCorruptionNeverPanics(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleLog()); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 300; trial++ {
		b := append([]byte(nil), orig...)
		for flips := 0; flips < 1+rng.IntN(8); flips++ {
			b[rng.IntN(len(b))] ^= byte(1 + rng.IntN(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: reader panicked: %v", trial, r)
				}
			}()
			_, _ = Read(bytes.NewReader(b))
		}()
	}
}

func TestEmptyLog(t *testing.T) {
	rt := darshan.NewRuntime(darshan.JobHeader{JobID: 1, NProcs: 1, StartTime: 10, EndTime: 20})
	log := rt.Finalize()
	got := roundTrip(t, log)
	if len(got.Records) != 0 {
		t.Errorf("empty log round-tripped with %d records", len(got.Records))
	}
	if got.Job.JobID != 1 {
		t.Errorf("job id = %d", got.Job.JobID)
	}
}

// Property: for arbitrary counter values (including negative and extreme),
// a single-record log round-trips exactly.
func TestRecordValueRoundTripProperty(t *testing.T) {
	f := func(jobID uint64, rank int32, vals [5]int64, fvals [4]float64) bool {
		rec := darshan.NewFileRecord(darshan.ModulePOSIX, darshan.HashPath("/f"), rank)
		for i, v := range vals {
			rec.Counters[i] = v
		}
		for i, v := range fvals {
			if math.IsNaN(v) {
				v = 0 // NaN never equals itself; runtime never emits NaN
			}
			rec.FCounters[i] = v
		}
		log := &darshan.Log{
			Job:     darshan.JobHeader{JobID: jobID, NProcs: 1},
			Names:   map[darshan.RecordID]string{darshan.HashPath("/f"): "/f"},
			Records: []*darshan.FileRecord{rec},
		}
		var buf bytes.Buffer
		if err := Write(&buf, log); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return got.Job.JobID == jobID &&
			len(got.Records) == 1 &&
			reflect.DeepEqual(got.Records[0].Counters, rec.Counters) &&
			reflect.DeepEqual(got.Records[0].FCounters, rec.FCounters)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWriteNilLog(t *testing.T) {
	if err := Write(&bytes.Buffer{}, nil); err == nil {
		t.Error("expected error for nil log")
	}
}

func TestCompressionActuallyShrinks(t *testing.T) {
	// A log with many similar records should compress well below raw size.
	rt := darshan.NewRuntime(darshan.JobHeader{JobID: 2, NProcs: 1, StartTime: 0, EndTime: 100})
	for i := 0; i < 500; i++ {
		rt.Observe(darshan.Op{Module: darshan.ModulePOSIX,
			Path: filepath.Join("/gpfs/alpine/proj", "f", string(rune('a'+i%26))),
			Rank: 0, Kind: darshan.OpWrite, Size: 4096, Offset: 0, Start: 1, End: 1.1})
	}
	log := rt.Finalize()
	var buf bytes.Buffer
	if err := Write(&buf, log); err != nil {
		t.Fatal(err)
	}
	rawGuess := len(log.Records) * (darshan.NumPosixCounters*8 + darshan.NumPosixFCounters*8)
	if buf.Len() >= rawGuess {
		t.Errorf("log size %d not smaller than raw counter size %d", buf.Len(), rawGuess)
	}
}

func TestReadOnDiskGolden(t *testing.T) {
	// Guard the on-disk layout: a byte-for-byte golden file must keep
	// parsing. Regenerate with -update if the format version changes.
	golden := filepath.Join("testdata", "golden_v1.darshan")
	if _, err := os.Stat(golden); errors.Is(err, os.ErrNotExist) {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := WriteFile(golden, sampleLog()); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadFile(golden)
	if err != nil {
		t.Fatalf("golden log unreadable: %v", err)
	}
	if got.Job.JobID != 4242 {
		t.Errorf("golden job id = %d, want 4242", got.Job.JobID)
	}
	if len(got.Records) == 0 {
		t.Error("golden log has no records")
	}
}
