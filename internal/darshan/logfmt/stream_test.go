package logfmt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"iolayers/internal/darshan"
)

// writeSampleArchive writes n copies of sampleLog (with distinct job ids)
// and returns the archive path.
func writeSampleArchive(t *testing.T, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "stream.dgar")
	logs := make([]*darshan.Log, n)
	for i := range logs {
		log := sampleLog()
		log.Job.JobID = uint64(1000 + i)
		logs[i] = log
	}
	if err := WriteArchiveFile(path, logs); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadArchiveFuncStreamsInOrder(t *testing.T) {
	path := writeSampleArchive(t, 5)
	var ids []uint64
	err := ReadArchiveFunc(path, func(i int, log *darshan.Log, err error) error {
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if i != len(ids) {
			t.Fatalf("entry index %d, want %d", i, len(ids))
		}
		ids = append(ids, log.Job.JobID)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1000, 1001, 1002, 1003, 1004}
	if !reflect.DeepEqual(ids, want) {
		t.Errorf("job ids = %v, want %v", ids, want)
	}
}

// ErrStop ends iteration early with no error — the laziness guarantee:
// entries after the stop are never decoded (or even read), so analysis can
// bound its work without slurping the archive.
func TestReadArchiveFuncStopsEarly(t *testing.T) {
	path := writeSampleArchive(t, 64)
	seen := 0
	err := ReadArchiveFunc(path, func(i int, log *darshan.Log, err error) error {
		seen++
		if seen == 2 {
			return ErrStop
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 2 {
		t.Errorf("callback ran %d times after ErrStop at 2", seen)
	}
}

func TestReadArchiveFuncPropagatesCallbackError(t *testing.T) {
	path := writeSampleArchive(t, 3)
	boom := errors.New("boom")
	err := ReadArchiveFunc(path, func(i int, log *darshan.Log, err error) error {
		return boom
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

// corruptEntry flips one byte in the middle of entry k's embedded log,
// leaving the archive framing intact.
func corruptEntry(t *testing.T, path string, k int) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := 6 // magic + version
	for i := 0; i < k; i++ {
		off += 4 + int(binary.LittleEndian.Uint32(raw[off:]))
	}
	n := int(binary.LittleEndian.Uint32(raw[off:]))
	raw[off+4+n/2] ^= 0x5A
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// A corrupt entry is reported to the callback and iteration continues with
// the following entries — the framing is independent of entry contents.
func TestReadArchiveFuncContinuesPastCorruptEntry(t *testing.T) {
	path := writeSampleArchive(t, 4)
	corruptEntry(t, path, 1)
	var ids []uint64
	var badIdx []int
	err := ReadArchiveFunc(path, func(i int, log *darshan.Log, err error) error {
		if err != nil {
			badIdx = append(badIdx, i)
			return nil
		}
		ids = append(ids, log.Job.JobID)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(badIdx, []int{1}) {
		t.Errorf("bad entries = %v, want [1]", badIdx)
	}
	if !reflect.DeepEqual(ids, []uint64{1000, 1002, 1003}) {
		t.Errorf("surviving job ids = %v", ids)
	}
}

// Same property at the ArchiveReader level: Next returns the per-entry
// error, then keeps yielding the entries after it.
func TestArchiveReaderNextRecoversFromCorruptEntry(t *testing.T) {
	path := writeSampleArchive(t, 3)
	corruptEntry(t, path, 0)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ar, err := NewArchiveReader(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ar.Next(); err == nil {
		t.Fatal("corrupt first entry should error")
	}
	for want := uint64(1001); want <= 1002; want++ {
		log, err := ar.Next()
		if err != nil {
			t.Fatalf("entry after corruption: %v", err)
		}
		if log.Job.JobID != want {
			t.Errorf("job id = %d, want %d", log.Job.JobID, want)
		}
	}
}

// The bounded-memory contract: the raw-entry scratch is reused across
// NextRaw calls instead of reallocated, so iterating an archive holds one
// entry at a time.
func TestArchiveReaderReusesEntryScratch(t *testing.T) {
	path := writeSampleArchive(t, 3)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ar, err := NewArchiveReader(f)
	if err != nil {
		t.Fatal(err)
	}
	first, err := ar.NextRaw()
	if err != nil {
		t.Fatal(err)
	}
	p0 := &first[0]
	second, err := ar.NextRaw()
	if err != nil {
		t.Fatal(err)
	}
	// Entries are the same size here, so reuse means the same backing array.
	if &second[0] != p0 {
		t.Error("NextRaw reallocated its scratch for a same-sized entry")
	}
}

// Pooled codec state is shared across goroutines; hammer round trips in
// parallel so `go test -race` guards the pools.
func TestParallelRoundTripsShareCodecPools(t *testing.T) {
	base := sampleLog()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var buf bytes.Buffer
				if err := Write(&buf, base); err != nil {
					errs <- err
					return
				}
				got, err := Read(&buf)
				if err != nil {
					errs <- err
					return
				}
				if got.Job.JobID != base.Job.JobID || len(got.Records) != len(base.Records) {
					errs <- errors.New("parallel round trip corrupted a log")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
