package logfmt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"iolayers/internal/darshan"
)

// Read parses a log from r. Unknown section types are skipped. For module
// sections, counters are remapped by name into the current module layout, so
// logs written by older or newer revisions of a module remain readable as
// long as counter names persist.
func Read(r io.Reader) (*darshan.Log, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrTruncated, err)
	}
	if magic != Magic {
		return nil, fmt.Errorf("%w: got %q", ErrBadMagic, magic[:])
	}
	var version, sectionCount uint16
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("%w: reading version: %v", ErrTruncated, err)
	}
	if version != Version {
		return nil, fmt.Errorf("%w: version %d (supported: %d)", ErrVersion, version, Version)
	}
	if err := binary.Read(r, binary.LittleEndian, &sectionCount); err != nil {
		return nil, fmt.Errorf("%w: reading section count: %v", ErrTruncated, err)
	}

	log := &darshan.Log{Names: map[darshan.RecordID]string{}}
	sawJob := false
	rs := getReadState()
	defer putReadState(rs)
	for s := 0; s < int(sectionCount); s++ {
		sectionType, module, payload, err := rs.readSection(r)
		if err != nil {
			return nil, err
		}
		switch sectionType {
		case sectionJob:
			job, err := decodeJob(payload)
			if err != nil {
				return nil, err
			}
			log.Job = job
			sawJob = true
		case sectionNames:
			if err := decodeNames(payload, log.Names); err != nil {
				return nil, err
			}
		case sectionModule:
			recs, err := decodeModule(darshan.ModuleID(module), payload)
			if err != nil {
				return nil, err
			}
			log.Records = append(log.Records, recs...)
		case sectionDXT:
			traces, err := decodeDXT(payload)
			if err != nil {
				return nil, err
			}
			log.DXT = append(log.DXT, traces...)
		default:
			// Unknown section type: skipped for forward compatibility.
		}
	}
	if !sawJob {
		return nil, fmt.Errorf("%w: no job section", ErrCorrupt)
	}
	return log, nil
}

// ReadFile reads and parses the log at path.
func ReadFile(path string) (*darshan.Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("logfmt: opening %s: %w", path, err)
	}
	defer f.Close()
	log, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("logfmt: parsing %s: %w", path, err)
	}
	return log, nil
}

// readSection reads one section into the pooled scratch. The returned
// payload aliases rs.payload and is valid only until the next readSection
// call on the same state; decoders copy out everything they keep.
func (rs *readState) readSection(r io.Reader) (sectionType, module uint8, payload []byte, err error) {
	if _, err := io.ReadFull(r, rs.hdr[:]); err != nil {
		return 0, 0, nil, fmt.Errorf("%w: section header: %v", ErrTruncated, err)
	}
	sectionType = rs.hdr[0]
	module = rs.hdr[1]
	uncompressedLen := binary.LittleEndian.Uint32(rs.hdr[2:])
	compressedLen := binary.LittleEndian.Uint32(rs.hdr[6:])
	wantCRC := binary.LittleEndian.Uint32(rs.hdr[10:])
	if uncompressedLen > maxSectionSize || compressedLen > maxSectionSize {
		return 0, 0, nil, fmt.Errorf("%w: section claims %d/%d bytes", ErrCorrupt, uncompressedLen, compressedLen)
	}
	rs.compressed = grow(rs.compressed, int(compressedLen))
	if _, err := io.ReadFull(r, rs.compressed); err != nil {
		return 0, 0, nil, fmt.Errorf("%w: section payload: %v", ErrTruncated, err)
	}
	if crc := crc32.ChecksumIEEE(rs.compressed); crc != wantCRC {
		return 0, 0, nil, fmt.Errorf("%w: section %d crc mismatch (got %08x want %08x)",
			ErrCorrupt, sectionType, crc, wantCRC)
	}
	if err := rs.resetInflater(); err != nil {
		return 0, 0, nil, fmt.Errorf("%w: section %d: %v", ErrCorrupt, sectionType, err)
	}
	rs.payload = grow(rs.payload, int(uncompressedLen))
	if _, err := io.ReadFull(rs.zr, rs.payload); err != nil {
		return 0, 0, nil, fmt.Errorf("%w: decompressing section %d: %v", ErrCorrupt, sectionType, err)
	}
	return sectionType, module, rs.payload, nil
}

// decoder consumes little-endian primitives from a payload, reporting
// malformed input through a sticky error.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("%w: payload ends at %d, need %d more bytes", ErrCorrupt, d.off, n)
		return false
	}
	return true
}

func (d *decoder) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) i64() int64 { return int64(d.u64()) }
func (d *decoder) i32() int32 { return int32(d.u32()) }
func (d *decoder) f64() float64 {
	return math.Float64frombits(d.u64())
}

func (d *decoder) str() string {
	n := int(d.u16())
	if !d.need(n) {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// strBytes returns a view of the next string without copying it out of the
// payload. Valid until the payload scratch is reused (i.e. within one
// section's decode).
func (d *decoder) strBytes() []byte {
	n := int(d.u16())
	if !d.need(n) {
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func decodeJob(payload []byte) (darshan.JobHeader, error) {
	d := &decoder{buf: payload}
	job := darshan.JobHeader{
		JobID:     d.u64(),
		UserID:    d.u64(),
		NProcs:    int(d.u32()),
		StartTime: d.i64(),
		EndTime:   d.i64(),
		Exe:       d.str(),
	}
	n := int(d.u16())
	if n > 0 {
		job.Metadata = make(map[string]string, n)
		for i := 0; i < n; i++ {
			k := d.str()
			v := d.str()
			if d.err != nil {
				break
			}
			job.Metadata[k] = v
		}
	}
	if d.err != nil {
		return darshan.JobHeader{}, fmt.Errorf("job section: %w", d.err)
	}
	return job, nil
}

func decodeNames(payload []byte, into map[darshan.RecordID]string) error {
	d := &decoder{buf: payload}
	n := int(d.u32())
	for i := 0; i < n; i++ {
		id := darshan.RecordID(d.u64())
		path := d.str()
		if d.err != nil {
			return fmt.Errorf("names section entry %d: %w", i, d.err)
		}
		into[id] = path
	}
	return d.err
}

func decodeDXT(payload []byte) ([]darshan.DXTTrace, error) {
	d := &decoder{buf: payload}
	n := int(d.u32())
	traces := make([]darshan.DXTTrace, 0, n)
	for i := 0; i < n; i++ {
		var b [1]byte
		if d.need(1) {
			b[0] = d.buf[d.off]
			d.off++
		}
		tr := darshan.DXTTrace{
			Module: darshan.ModuleID(b[0]),
			Record: darshan.RecordID(d.u64()),
			Rank:   d.i32(),
		}
		nSegs := int(d.u32())
		// Bound segment allocation by the remaining payload (33 bytes per
		// segment) so a corrupt count cannot force a huge allocation.
		if remaining := (len(d.buf) - d.off) / 33; nSegs > remaining {
			return nil, fmt.Errorf("%w: DXT trace %d claims %d segments, only %d possible",
				ErrCorrupt, i, nSegs, remaining)
		}
		tr.Segments = make([]darshan.DXTSegment, 0, nSegs)
		for s := 0; s < nSegs; s++ {
			var kind [1]byte
			if d.need(1) {
				kind[0] = d.buf[d.off]
				d.off++
			}
			tr.Segments = append(tr.Segments, darshan.DXTSegment{
				Kind:   darshan.OpKind(kind[0]),
				Offset: d.i64(),
				Length: d.i64(),
				Start:  d.f64(),
				End:    d.f64(),
			})
		}
		if d.err != nil {
			return nil, fmt.Errorf("DXT trace %d: %w", i, d.err)
		}
		traces = append(traces, tr)
	}
	return traces, d.err
}

func decodeModule(m darshan.ModuleID, payload []byte) ([]*darshan.FileRecord, error) {
	d := &decoder{buf: payload}
	// Build index remaps from the on-disk layout to the current layout.
	// Names absent from the current layout are dropped; current counters
	// absent from the file stay zero. An entirely unknown module keeps the
	// on-disk layout verbatim (identity remap), which preserves
	// self-description for downstream tools. A nil remap means identity —
	// the common case (log written by this revision), detected without
	// materializing a single name string.
	nCounters := int(d.u16())
	counterRemap := decodeNameTable(d, nCounters, darshan.CounterNames(m))
	nFCounters := int(d.u16())
	fcounterRemap := decodeNameTable(d, nFCounters, darshan.FCounterNames(m))
	if d.err != nil {
		return nil, fmt.Errorf("module %v name tables: %w", m, d.err)
	}
	known := darshan.NumCounters(m) > 0

	nRecords := int(d.u32())
	records := make([]*darshan.FileRecord, 0, nRecords)
	for i := 0; i < nRecords; i++ {
		id := darshan.RecordID(d.u64())
		rank := d.i32()
		var rec *darshan.FileRecord
		if known {
			rec = darshan.NewFileRecord(m, id, rank)
		} else {
			rec = &darshan.FileRecord{
				Module:    m,
				Record:    id,
				Rank:      rank,
				Counters:  make([]int64, nCounters),
				FCounters: make([]float64, nFCounters),
			}
		}
		for j := 0; j < nCounters; j++ {
			v := d.i64()
			if !known || counterRemap == nil {
				rec.Counters[j] = v
			} else if dst := counterRemap[j]; dst >= 0 {
				rec.Counters[dst] = v
			}
		}
		for j := 0; j < nFCounters; j++ {
			v := d.f64()
			if !known || fcounterRemap == nil {
				rec.FCounters[j] = v
			} else if dst := fcounterRemap[j]; dst >= 0 {
				rec.FCounters[dst] = v
			}
		}
		if d.err != nil {
			return nil, fmt.Errorf("module %v record %d: %w", m, i, d.err)
		}
		records = append(records, rec)
	}
	return records, nil
}

// decodeNameTable consumes an n-entry name table and returns the remap
// from on-disk indexes to dst's, or nil when the table matches dst exactly
// (identity). The identity check compares name bytes in place, so the hot
// path allocates nothing; only layout drift pays for strings and a map.
func decodeNameTable(d *decoder, n int, dst []string) []int {
	start := d.off
	identity := n == len(dst)
	for i := 0; i < n; i++ {
		b := d.strBytes()
		if identity && string(b) != dst[i] {
			identity = false
		}
	}
	if identity || d.err != nil {
		return nil
	}
	d.off = start
	names := make([]string, n)
	for i := range names {
		names[i] = d.str()
	}
	return remapIndexes(names, dst)
}

// remapIndexes returns, for each source index, the destination index with
// the same name, or −1 if the destination layout lacks that name.
func remapIndexes(src, dst []string) []int {
	dstIdx := make(map[string]int, len(dst))
	for i, n := range dst {
		dstIdx[n] = i
	}
	remap := make([]int, len(src))
	for i, n := range src {
		if j, ok := dstIdx[n]; ok {
			remap[i] = j
		} else {
			remap[i] = -1
		}
	}
	return remap
}
