package logfmt

import (
	"bytes"
	"compress/zlib"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"iolayers/internal/darshan"
)

// Read parses a log from r. Unknown section types are skipped. For module
// sections, counters are remapped by name into the current module layout, so
// logs written by older or newer revisions of a module remain readable as
// long as counter names persist.
func Read(r io.Reader) (*darshan.Log, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrTruncated, err)
	}
	if magic != Magic {
		return nil, fmt.Errorf("%w: got %q", ErrBadMagic, magic[:])
	}
	var version, sectionCount uint16
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("%w: reading version: %v", ErrTruncated, err)
	}
	if version != Version {
		return nil, fmt.Errorf("%w: version %d (supported: %d)", ErrVersion, version, Version)
	}
	if err := binary.Read(r, binary.LittleEndian, &sectionCount); err != nil {
		return nil, fmt.Errorf("%w: reading section count: %v", ErrTruncated, err)
	}

	log := &darshan.Log{Names: map[darshan.RecordID]string{}}
	sawJob := false
	for s := 0; s < int(sectionCount); s++ {
		sectionType, module, payload, err := readSection(r)
		if err != nil {
			return nil, err
		}
		switch sectionType {
		case sectionJob:
			job, err := decodeJob(payload)
			if err != nil {
				return nil, err
			}
			log.Job = job
			sawJob = true
		case sectionNames:
			if err := decodeNames(payload, log.Names); err != nil {
				return nil, err
			}
		case sectionModule:
			recs, err := decodeModule(darshan.ModuleID(module), payload)
			if err != nil {
				return nil, err
			}
			log.Records = append(log.Records, recs...)
		case sectionDXT:
			traces, err := decodeDXT(payload)
			if err != nil {
				return nil, err
			}
			log.DXT = append(log.DXT, traces...)
		default:
			// Unknown section type: skipped for forward compatibility.
		}
	}
	if !sawJob {
		return nil, fmt.Errorf("%w: no job section", ErrCorrupt)
	}
	return log, nil
}

// ReadFile reads and parses the log at path.
func ReadFile(path string) (*darshan.Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("logfmt: opening %s: %w", path, err)
	}
	defer f.Close()
	log, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("logfmt: parsing %s: %w", path, err)
	}
	return log, nil
}

func readSection(r io.Reader) (sectionType, module uint8, payload []byte, err error) {
	hdr := make([]byte, 14)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, 0, nil, fmt.Errorf("%w: section header: %v", ErrTruncated, err)
	}
	sectionType = hdr[0]
	module = hdr[1]
	uncompressedLen := binary.LittleEndian.Uint32(hdr[2:])
	compressedLen := binary.LittleEndian.Uint32(hdr[6:])
	wantCRC := binary.LittleEndian.Uint32(hdr[10:])
	if uncompressedLen > maxSectionSize || compressedLen > maxSectionSize {
		return 0, 0, nil, fmt.Errorf("%w: section claims %d/%d bytes", ErrCorrupt, uncompressedLen, compressedLen)
	}
	compressed := make([]byte, compressedLen)
	if _, err := io.ReadFull(r, compressed); err != nil {
		return 0, 0, nil, fmt.Errorf("%w: section payload: %v", ErrTruncated, err)
	}
	if crc := crc32.ChecksumIEEE(compressed); crc != wantCRC {
		return 0, 0, nil, fmt.Errorf("%w: section %d crc mismatch (got %08x want %08x)",
			ErrCorrupt, sectionType, crc, wantCRC)
	}
	zr, err := zlib.NewReader(bytes.NewReader(compressed))
	if err != nil {
		return 0, 0, nil, fmt.Errorf("%w: section %d: %v", ErrCorrupt, sectionType, err)
	}
	defer zr.Close()
	payload = make([]byte, uncompressedLen)
	if _, err := io.ReadFull(zr, payload); err != nil {
		return 0, 0, nil, fmt.Errorf("%w: decompressing section %d: %v", ErrCorrupt, sectionType, err)
	}
	return sectionType, module, payload, nil
}

// decoder consumes little-endian primitives from a payload, reporting
// malformed input through a sticky error.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("%w: payload ends at %d, need %d more bytes", ErrCorrupt, d.off, n)
		return false
	}
	return true
}

func (d *decoder) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) i64() int64 { return int64(d.u64()) }
func (d *decoder) i32() int32 { return int32(d.u32()) }
func (d *decoder) f64() float64 {
	return math.Float64frombits(d.u64())
}

func (d *decoder) str() string {
	n := int(d.u16())
	if !d.need(n) {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

func decodeJob(payload []byte) (darshan.JobHeader, error) {
	d := &decoder{buf: payload}
	job := darshan.JobHeader{
		JobID:     d.u64(),
		UserID:    d.u64(),
		NProcs:    int(d.u32()),
		StartTime: d.i64(),
		EndTime:   d.i64(),
		Exe:       d.str(),
	}
	n := int(d.u16())
	if n > 0 {
		job.Metadata = make(map[string]string, n)
		for i := 0; i < n; i++ {
			k := d.str()
			v := d.str()
			if d.err != nil {
				break
			}
			job.Metadata[k] = v
		}
	}
	if d.err != nil {
		return darshan.JobHeader{}, fmt.Errorf("job section: %w", d.err)
	}
	return job, nil
}

func decodeNames(payload []byte, into map[darshan.RecordID]string) error {
	d := &decoder{buf: payload}
	n := int(d.u32())
	for i := 0; i < n; i++ {
		id := darshan.RecordID(d.u64())
		path := d.str()
		if d.err != nil {
			return fmt.Errorf("names section entry %d: %w", i, d.err)
		}
		into[id] = path
	}
	return d.err
}

func decodeDXT(payload []byte) ([]darshan.DXTTrace, error) {
	d := &decoder{buf: payload}
	n := int(d.u32())
	traces := make([]darshan.DXTTrace, 0, n)
	for i := 0; i < n; i++ {
		var b [1]byte
		if d.need(1) {
			b[0] = d.buf[d.off]
			d.off++
		}
		tr := darshan.DXTTrace{
			Module: darshan.ModuleID(b[0]),
			Record: darshan.RecordID(d.u64()),
			Rank:   d.i32(),
		}
		nSegs := int(d.u32())
		// Bound segment allocation by the remaining payload (33 bytes per
		// segment) so a corrupt count cannot force a huge allocation.
		if remaining := (len(d.buf) - d.off) / 33; nSegs > remaining {
			return nil, fmt.Errorf("%w: DXT trace %d claims %d segments, only %d possible",
				ErrCorrupt, i, nSegs, remaining)
		}
		tr.Segments = make([]darshan.DXTSegment, 0, nSegs)
		for s := 0; s < nSegs; s++ {
			var kind [1]byte
			if d.need(1) {
				kind[0] = d.buf[d.off]
				d.off++
			}
			tr.Segments = append(tr.Segments, darshan.DXTSegment{
				Kind:   darshan.OpKind(kind[0]),
				Offset: d.i64(),
				Length: d.i64(),
				Start:  d.f64(),
				End:    d.f64(),
			})
		}
		if d.err != nil {
			return nil, fmt.Errorf("DXT trace %d: %w", i, d.err)
		}
		traces = append(traces, tr)
	}
	return traces, d.err
}

func decodeModule(m darshan.ModuleID, payload []byte) ([]*darshan.FileRecord, error) {
	d := &decoder{buf: payload}
	nCounters := int(d.u16())
	fileCounterNames := make([]string, nCounters)
	for i := range fileCounterNames {
		fileCounterNames[i] = d.str()
	}
	nFCounters := int(d.u16())
	fileFCounterNames := make([]string, nFCounters)
	for i := range fileFCounterNames {
		fileFCounterNames[i] = d.str()
	}
	if d.err != nil {
		return nil, fmt.Errorf("module %v name tables: %w", m, d.err)
	}

	// Build index remaps from the on-disk layout to the current layout.
	// Names absent from the current layout are dropped; current counters
	// absent from the file stay zero. An entirely unknown module keeps the
	// on-disk layout verbatim (identity remap), which preserves
	// self-description for downstream tools.
	counterRemap := remapIndexes(fileCounterNames, darshan.CounterNames(m))
	fcounterRemap := remapIndexes(fileFCounterNames, darshan.FCounterNames(m))
	known := darshan.NumCounters(m) > 0

	nRecords := int(d.u32())
	records := make([]*darshan.FileRecord, 0, nRecords)
	for i := 0; i < nRecords; i++ {
		id := darshan.RecordID(d.u64())
		rank := d.i32()
		var rec *darshan.FileRecord
		if known {
			rec = darshan.NewFileRecord(m, id, rank)
		} else {
			rec = &darshan.FileRecord{
				Module:    m,
				Record:    id,
				Rank:      rank,
				Counters:  make([]int64, nCounters),
				FCounters: make([]float64, nFCounters),
			}
		}
		for j := 0; j < nCounters; j++ {
			v := d.i64()
			if known {
				if dst := counterRemap[j]; dst >= 0 {
					rec.Counters[dst] = v
				}
			} else {
				rec.Counters[j] = v
			}
		}
		for j := 0; j < nFCounters; j++ {
			v := d.f64()
			if known {
				if dst := fcounterRemap[j]; dst >= 0 {
					rec.FCounters[dst] = v
				}
			} else {
				rec.FCounters[j] = v
			}
		}
		if d.err != nil {
			return nil, fmt.Errorf("module %v record %d: %w", m, i, d.err)
		}
		records = append(records, rec)
	}
	return records, nil
}

// remapIndexes returns, for each source index, the destination index with
// the same name, or −1 if the destination layout lacks that name.
func remapIndexes(src, dst []string) []int {
	dstIdx := make(map[string]int, len(dst))
	for i, n := range dst {
		dstIdx[n] = i
	}
	remap := make([]int, len(src))
	for i, n := range src {
		if j, ok := dstIdx[n]; ok {
			remap[i] = j
		} else {
			remap[i] = -1
		}
	}
	return remap
}
