package logfmt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"iolayers/internal/darshan"
)

// countReader tracks the byte offset of the underlying stream so decode
// errors can locate the damaged structure.
type countReader struct {
	r io.Reader
	n int64
}

func (cr *countReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// Read parses a log from r under DefaultLimits. Unknown section types are
// skipped. For module sections, counters are remapped by name into the
// current module layout, so logs written by older or newer revisions of a
// module remain readable as long as counter names persist.
func Read(r io.Reader) (*darshan.Log, error) {
	return ReadWithLimits(r, DefaultLimits())
}

// ReadWithLimits parses a log from r, treating it as untrusted: every
// declared length, count, and size is validated against lim and against
// what the input could actually hold before anything is allocated. Failures
// return a *DecodeError classifying the damage (truncated vs corrupt vs
// limit-exceeded) with the byte offset of the damaged section; the error
// also unwraps to the matching package sentinel.
//
// Classification contract (shared with the archive paths): input that ends
// before a structure it promised is KindTruncated; bytes that are present
// but wrong — CRC mismatches, impossible counts, malformed payloads — are
// KindCorrupt; well-formed input demanding more than lim allows is
// KindLimitExceeded.
func ReadWithLimits(r io.Reader, lim DecodeLimits) (*darshan.Log, error) {
	lim = lim.sanitize()
	cr := &countReader{r: r}
	var magic [4]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, decodeErrf(KindTruncated, "header", 0, "reading magic: %v", err)
	}
	if magic != Magic {
		return nil, decodeErrf(KindBadMagic, "header", 0, "got %q", magic[:])
	}
	var version, sectionCount uint16
	if err := binary.Read(cr, binary.LittleEndian, &version); err != nil {
		return nil, decodeErrf(KindTruncated, "header", 0, "reading version: %v", err)
	}
	if version != Version {
		return nil, decodeErrf(KindBadVersion, "header", 0, "version %d (supported: %d)", version, Version)
	}
	if err := binary.Read(cr, binary.LittleEndian, &sectionCount); err != nil {
		return nil, decodeErrf(KindTruncated, "header", 0, "reading section count: %v", err)
	}

	log := &darshan.Log{Names: map[darshan.RecordID]string{}}
	sawJob := false
	rs := getReadState()
	defer putReadState(rs)
	for s := 0; s < int(sectionCount); s++ {
		sectionStart := cr.n
		sectionType, module, payload, err := rs.readSection(cr, lim, sectionStart)
		if err != nil {
			return nil, err
		}
		switch sectionType {
		case sectionJob:
			job, err := decodeJob(payload, lim, sectionStart)
			if err != nil {
				return nil, err
			}
			log.Job = job
			sawJob = true
		case sectionNames:
			if err := decodeNames(payload, log.Names, lim, sectionStart); err != nil {
				return nil, err
			}
		case sectionModule:
			recs, err := decodeModule(darshan.ModuleID(module), payload, lim, sectionStart)
			if err != nil {
				return nil, err
			}
			log.Records = append(log.Records, recs...)
		case sectionDXT:
			traces, err := decodeDXT(payload, lim, sectionStart)
			if err != nil {
				return nil, err
			}
			log.DXT = append(log.DXT, traces...)
		default:
			// Unknown section type: skipped for forward compatibility.
		}
	}
	if !sawJob {
		return nil, decodeErrf(KindCorrupt, "header", 0, "no job section among %d sections", sectionCount)
	}
	return log, nil
}

// ReadFile reads and parses the log at path.
func ReadFile(path string) (*darshan.Log, error) {
	return ReadFileWithLimits(path, DefaultLimits())
}

// ReadFileWithLimits is ReadWithLimits over the file at path.
func ReadFileWithLimits(path string, lim DecodeLimits) (*darshan.Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("logfmt: opening %s: %w", path, err)
	}
	defer f.Close()
	log, err := ReadWithLimits(f, lim)
	if err != nil {
		return nil, fmt.Errorf("logfmt: parsing %s: %w", path, err)
	}
	return log, nil
}

// sectionName renders a section type for error messages.
func sectionName(t uint8) string {
	switch t {
	case sectionJob:
		return "job"
	case sectionNames:
		return "names"
	case sectionModule:
		return "module"
	case sectionDXT:
		return "dxt"
	default:
		return fmt.Sprintf("section-%d", t)
	}
}

// readSection reads one section into the pooled scratch. The returned
// payload aliases rs.payload and is valid only until the next readSection
// call on the same state; decoders copy out everything they keep. The
// declared sizes are validated against lim before any allocation, which is
// what stops a zlib bomb: a section claiming a huge uncompressed size is
// rejected without inflating a single byte.
func (rs *readState) readSection(r io.Reader, lim DecodeLimits, start int64) (sectionType, module uint8, payload []byte, err error) {
	if _, err := io.ReadFull(r, rs.hdr[:]); err != nil {
		return 0, 0, nil, decodeErrf(KindTruncated, "section", start, "section header: %v", err)
	}
	sectionType = rs.hdr[0]
	module = rs.hdr[1]
	name := sectionName(sectionType)
	uncompressedLen := binary.LittleEndian.Uint32(rs.hdr[2:])
	compressedLen := binary.LittleEndian.Uint32(rs.hdr[6:])
	wantCRC := binary.LittleEndian.Uint32(rs.hdr[10:])
	if int64(uncompressedLen) > int64(lim.MaxSectionBytes) {
		return 0, 0, nil, decodeErrf(KindLimitExceeded, name, start,
			"section claims %d uncompressed bytes (limit %d)", uncompressedLen, lim.MaxSectionBytes)
	}
	if int64(compressedLen) > int64(lim.MaxCompressedBytes) {
		return 0, 0, nil, decodeErrf(KindLimitExceeded, name, start,
			"section claims %d compressed bytes (limit %d)", compressedLen, lim.MaxCompressedBytes)
	}
	rs.compressed = grow(rs.compressed, int(compressedLen))
	if _, err := io.ReadFull(r, rs.compressed); err != nil {
		return 0, 0, nil, decodeErrf(KindTruncated, name, start, "section payload: %v", err)
	}
	if crc := crc32.ChecksumIEEE(rs.compressed); crc != wantCRC {
		return 0, 0, nil, decodeErrf(KindCorrupt, name, start,
			"crc mismatch (got %08x want %08x)", crc, wantCRC)
	}
	if err := rs.resetInflater(); err != nil {
		return 0, 0, nil, decodeErrf(KindCorrupt, name, start, "zlib: %v", err)
	}
	rs.payload = grow(rs.payload, int(uncompressedLen))
	if _, err := io.ReadFull(rs.zr, rs.payload); err != nil {
		return 0, 0, nil, decodeErrf(KindCorrupt, name, start, "decompressing: %v", err)
	}
	return sectionType, module, rs.payload, nil
}

// decoder consumes little-endian primitives from a payload, reporting
// malformed input through a sticky *DecodeError carrying the section name
// and its byte offset in the stream.
type decoder struct {
	buf     []byte
	off     int
	err     error
	lim     DecodeLimits
	section string
	base    int64
}

func (d *decoder) fail(kind ErrorKind, format string, args ...any) {
	if d.err == nil {
		d.err = decodeErrf(kind, d.section, d.base, format, args...)
	}
}

func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.buf) {
		d.fail(KindCorrupt, "payload ends at %d, need %d more bytes", d.off, n)
		return false
	}
	return true
}

// boundCount validates a declared element count against both the configured
// cap and the payload bytes actually remaining (minSize bytes per element),
// so a crafted count can neither allocate past the limits nor past what the
// input could possibly hold.
func (d *decoder) boundCount(what string, n, minSize, limit int) int {
	if d.err != nil {
		return 0
	}
	if n > limit {
		d.fail(KindLimitExceeded, "%s count %d exceeds limit %d", what, n, limit)
		return 0
	}
	if remaining := (len(d.buf) - d.off) / minSize; n > remaining {
		d.fail(KindCorrupt, "%s count %d impossible: %d bytes of payload remain",
			what, n, len(d.buf)-d.off)
		return 0
	}
	return n
}

func (d *decoder) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) i64() int64 { return int64(d.u64()) }
func (d *decoder) i32() int32 { return int32(d.u32()) }
func (d *decoder) f64() float64 {
	return math.Float64frombits(d.u64())
}

func (d *decoder) str() string {
	n := int(d.u16())
	if n > d.lim.MaxStringLen {
		d.fail(KindLimitExceeded, "string of %d bytes exceeds limit %d", n, d.lim.MaxStringLen)
		return ""
	}
	if !d.need(n) {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// strBytes returns a view of the next string without copying it out of the
// payload. Valid until the payload scratch is reused (i.e. within one
// section's decode).
func (d *decoder) strBytes() []byte {
	n := int(d.u16())
	if n > d.lim.MaxStringLen {
		d.fail(KindLimitExceeded, "string of %d bytes exceeds limit %d", n, d.lim.MaxStringLen)
		return nil
	}
	if !d.need(n) {
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func decodeJob(payload []byte, lim DecodeLimits, base int64) (darshan.JobHeader, error) {
	d := &decoder{buf: payload, lim: lim, section: "job", base: base}
	job := darshan.JobHeader{
		JobID:     d.u64(),
		UserID:    d.u64(),
		NProcs:    int(d.u32()),
		StartTime: d.i64(),
		EndTime:   d.i64(),
		Exe:       d.str(),
	}
	// A metadata pair is at least two empty strings (two u16 lengths).
	n := d.boundCount("metadata pair", int(d.u16()), 4, lim.MaxMetadataPairs)
	if n > 0 {
		job.Metadata = make(map[string]string, n)
		for i := 0; i < n; i++ {
			k := d.str()
			v := d.str()
			if d.err != nil {
				break
			}
			job.Metadata[k] = v
		}
	}
	if d.err != nil {
		return darshan.JobHeader{}, d.err
	}
	return job, nil
}

func decodeNames(payload []byte, into map[darshan.RecordID]string, lim DecodeLimits, base int64) error {
	d := &decoder{buf: payload, lim: lim, section: "names", base: base}
	// A name-table entry is at least a record ID plus an empty string.
	n := d.boundCount("name-table entry", int(d.u32()), 10, lim.MaxNames)
	for i := 0; i < n; i++ {
		id := darshan.RecordID(d.u64())
		path := d.str()
		if d.err != nil {
			return d.err
		}
		into[id] = path
	}
	return d.err
}

func decodeDXT(payload []byte, lim DecodeLimits, base int64) ([]darshan.DXTTrace, error) {
	d := &decoder{buf: payload, lim: lim, section: "dxt", base: base}
	// A trace is at least module + record + rank + segment count (17 bytes).
	n := d.boundCount("DXT trace", int(d.u32()), 17, lim.MaxDXTTraces)
	traces := make([]darshan.DXTTrace, 0, n)
	for i := 0; i < n; i++ {
		var b [1]byte
		if d.need(1) {
			b[0] = d.buf[d.off]
			d.off++
		}
		tr := darshan.DXTTrace{
			Module: darshan.ModuleID(b[0]),
			Record: darshan.RecordID(d.u64()),
			Rank:   d.i32(),
		}
		// A segment is 33 bytes; the count is bounded by the remaining
		// payload and the configured cap before any allocation.
		nSegs := d.boundCount("DXT segment", int(d.u32()), 33, lim.MaxDXTSegments)
		if d.err != nil {
			return nil, d.err
		}
		tr.Segments = make([]darshan.DXTSegment, 0, nSegs)
		for s := 0; s < nSegs; s++ {
			var kind [1]byte
			if d.need(1) {
				kind[0] = d.buf[d.off]
				d.off++
			}
			tr.Segments = append(tr.Segments, darshan.DXTSegment{
				Kind:   darshan.OpKind(kind[0]),
				Offset: d.i64(),
				Length: d.i64(),
				Start:  d.f64(),
				End:    d.f64(),
			})
		}
		if d.err != nil {
			return nil, d.err
		}
		traces = append(traces, tr)
	}
	return traces, d.err
}

func decodeModule(m darshan.ModuleID, payload []byte, lim DecodeLimits, base int64) ([]*darshan.FileRecord, error) {
	d := &decoder{buf: payload, lim: lim, section: "module", base: base}
	// Build index remaps from the on-disk layout to the current layout.
	// Names absent from the current layout are dropped; current counters
	// absent from the file stay zero. An entirely unknown module keeps the
	// on-disk layout verbatim (identity remap), which preserves
	// self-description for downstream tools. A nil remap means identity —
	// the common case (log written by this revision), detected without
	// materializing a single name string.
	nCounters := int(d.u16())
	counterRemap := decodeNameTable(d, nCounters, darshan.CounterNames(m))
	nFCounters := int(d.u16())
	fcounterRemap := decodeNameTable(d, nFCounters, darshan.FCounterNames(m))
	if d.err != nil {
		return nil, d.err
	}
	known := darshan.NumCounters(m) > 0

	// A record is id + rank plus its counters; bounding the declared record
	// count by the remaining payload stops a crafted count from forcing a
	// giant slice allocation out of a tiny file.
	recSize := 12 + 8*(nCounters+nFCounters)
	nRecords := d.boundCount("record", int(d.u32()), recSize, lim.MaxRecords)
	if d.err != nil {
		return nil, d.err
	}
	records := make([]*darshan.FileRecord, 0, nRecords)
	for i := 0; i < nRecords; i++ {
		id := darshan.RecordID(d.u64())
		rank := d.i32()
		var rec *darshan.FileRecord
		if known {
			rec = darshan.NewFileRecord(m, id, rank)
		} else {
			rec = &darshan.FileRecord{
				Module:    m,
				Record:    id,
				Rank:      rank,
				Counters:  make([]int64, nCounters),
				FCounters: make([]float64, nFCounters),
			}
		}
		for j := 0; j < nCounters; j++ {
			v := d.i64()
			if !known || counterRemap == nil {
				rec.Counters[j] = v
			} else if dst := counterRemap[j]; dst >= 0 {
				rec.Counters[dst] = v
			}
		}
		for j := 0; j < nFCounters; j++ {
			v := d.f64()
			if !known || fcounterRemap == nil {
				rec.FCounters[j] = v
			} else if dst := fcounterRemap[j]; dst >= 0 {
				rec.FCounters[dst] = v
			}
		}
		if d.err != nil {
			return nil, d.err
		}
		records = append(records, rec)
	}
	return records, nil
}

// decodeNameTable consumes an n-entry name table and returns the remap
// from on-disk indexes to dst's, or nil when the table matches dst exactly
// (identity). The identity check compares name bytes in place, so the hot
// path allocates nothing; only layout drift pays for strings and a map.
func decodeNameTable(d *decoder, n int, dst []string) []int {
	// A table entry is at least an empty string (one u16 length).
	n = d.boundCount("counter name", n, 2, d.lim.MaxNames)
	start := d.off
	identity := n == len(dst)
	for i := 0; i < n; i++ {
		b := d.strBytes()
		if identity && string(b) != dst[i] {
			identity = false
		}
	}
	if identity || d.err != nil {
		return nil
	}
	d.off = start
	names := make([]string, n)
	for i := range names {
		names[i] = d.str()
	}
	return remapIndexes(names, dst)
}

// remapIndexes returns, for each source index, the destination index with
// the same name, or −1 if the destination layout lacks that name.
func remapIndexes(src, dst []string) []int {
	dstIdx := make(map[string]int, len(dst))
	for i, n := range dst {
		dstIdx[n] = i
	}
	remap := make([]int, len(src))
	for i, n := range src {
		if j, ok := dstIdx[n]; ok {
			remap[i] = j
		} else {
			remap[i] = -1
		}
	}
	return remap
}
