package logfmt

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"iolayers/internal/darshan"
	"iolayers/internal/units"
)

func archiveLogs(n int) []*darshan.Log {
	logs := make([]*darshan.Log, 0, n)
	for i := 0; i < n; i++ {
		rt := darshan.NewRuntime(darshan.JobHeader{
			JobID: uint64(100 + i), NProcs: 2, StartTime: int64(i * 1000), EndTime: int64(i*1000 + 500),
		})
		rt.Observe(darshan.Op{Module: darshan.ModulePOSIX, Path: "/gpfs/alpine/f",
			Rank: 0, Kind: darshan.OpWrite, Size: units.MiB, Offset: 0, Start: 1, End: 2})
		logs = append(logs, rt.Finalize())
	}
	return logs
}

func TestArchiveRoundTrip(t *testing.T) {
	logs := archiveLogs(5)
	var buf bytes.Buffer
	aw, err := NewArchiveWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range logs {
		if err := aw.Append(l); err != nil {
			t.Fatal(err)
		}
	}
	if aw.Count() != 5 {
		t.Errorf("count = %d", aw.Count())
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}

	ar, err := NewArchiveReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		log, err := ar.Next()
		if errors.Is(err, io.EOF) {
			if i != 5 {
				t.Errorf("read %d logs, want 5", i)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if log.Job.JobID != uint64(100+i) {
			t.Errorf("entry %d: job %d", i, log.Job.JobID)
		}
	}
	// Next after EOF keeps returning EOF.
	if _, err := ar.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("post-EOF err = %v", err)
	}
}

func TestArchiveFileHelpers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.dgar")
	logs := archiveLogs(3)
	if err := WriteArchiveFile(path, logs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArchiveFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("read %d logs", len(got))
	}
	for i := range got {
		if got[i].Job.JobID != logs[i].Job.JobID {
			t.Errorf("entry %d: job %d vs %d", i, got[i].Job.JobID, logs[i].Job.JobID)
		}
	}
}

func TestArchiveUnterminatedIsTruncated(t *testing.T) {
	var buf bytes.Buffer
	aw, _ := NewArchiveWriter(&buf)
	_ = aw.Append(archiveLogs(1)[0])
	// No Close: missing terminator.
	_ = aw.w.Flush()
	ar, err := NewArchiveReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ar.Next(); err != nil {
		t.Fatalf("first entry should parse: %v", err)
	}
	if _, err := ar.Next(); !errors.Is(err, ErrTruncated) {
		t.Errorf("unterminated archive err = %v, want ErrTruncated", err)
	}
}

func TestArchiveRejectsWrongMagic(t *testing.T) {
	_, err := NewArchiveReader(bytes.NewReader([]byte("NOPE\x01\x00")))
	if !errors.Is(err, ErrNotArchive) {
		t.Errorf("err = %v, want ErrNotArchive", err)
	}
	// A plain log is not an archive either.
	var buf bytes.Buffer
	if err := Write(&buf, archiveLogs(1)[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := NewArchiveReader(&buf); !errors.Is(err, ErrNotArchive) {
		t.Errorf("plain log accepted as archive: %v", err)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	var buf bytes.Buffer
	aw, _ := NewArchiveWriter(&buf)
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := aw.Append(archiveLogs(1)[0]); err == nil {
		t.Error("append after close succeeded")
	}
	// Double close is a no-op.
	if err := aw.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestRecoverArchiveFile(t *testing.T) {
	// Crash scenario: three logs appended, no terminator, trailing garbage.
	path := filepath.Join(t.TempDir(), "crashed.dgar")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	aw, _ := NewArchiveWriter(f)
	for _, l := range archiveLogs(3) {
		if err := aw.Append(l); err != nil {
			t.Fatal(err)
		}
	}
	_ = aw.w.Flush()
	// Simulate a partially written fourth entry: a length prefix with only
	// half the payload behind it.
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 'D', 'G'}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Strict reading fails...
	if _, err := ReadArchiveFile(path); err == nil {
		t.Error("strict read of crashed archive succeeded")
	}
	// ...recovery salvages the complete entries.
	logs, err := RecoverArchiveFile(path)
	if err == nil {
		t.Error("recovery should report the damage point")
	}
	if len(logs) != 3 {
		t.Errorf("recovered %d logs, want 3", len(logs))
	}
	for i, l := range logs {
		if l.Job.JobID != uint64(100+i) {
			t.Errorf("recovered entry %d: job %d", i, l.Job.JobID)
		}
	}
}

func TestRecoverCleanArchive(t *testing.T) {
	path := filepath.Join(t.TempDir(), "clean.dgar")
	if err := WriteArchiveFile(path, archiveLogs(2)); err != nil {
		t.Fatal(err)
	}
	logs, err := RecoverArchiveFile(path)
	if err != nil {
		t.Errorf("recovery of a clean archive errored: %v", err)
	}
	if len(logs) != 2 {
		t.Errorf("recovered %d logs", len(logs))
	}
}

func TestEmptyArchive(t *testing.T) {
	var buf bytes.Buffer
	aw, _ := NewArchiveWriter(&buf)
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	ar, err := NewArchiveReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ar.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("empty archive err = %v, want EOF", err)
	}
}
