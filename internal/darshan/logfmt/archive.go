package logfmt

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"iolayers/internal/darshan"
)

// Campaign archives bundle many logs into one stream. Production Darshan
// collections are published exactly this way — the month the paper released
// ships as tarred bundles, not millions of loose files. The format is
// sequential and streaming-friendly:
//
//	magic "DGAR" | version u16 | entries... | terminator
//	entry: length u32 (>0) | one complete log in the DGOL format
//	terminator: length u32 == 0
//
// Appending requires no index and readers can process logs as they arrive.

// ArchiveMagic identifies a campaign archive.
var ArchiveMagic = [4]byte{'D', 'G', 'A', 'R'}

// archiveHeaderSize is the byte length of the archive header (magic +
// version).
const archiveHeaderSize = 6

// ErrNotArchive marks a stream without the archive magic.
var ErrNotArchive = errors.New("logfmt: not a campaign archive")

// maxArchiveEntry bounds one embedded log's size.
const maxArchiveEntry = 1 << 30

// ArchiveWriter appends logs to a campaign archive. Close writes the
// terminator; an unterminated archive reads as truncated.
type ArchiveWriter struct {
	w       *bufio.Writer
	count   int
	written int64
	closed  bool
}

// NewArchiveWriter starts an archive on w.
func NewArchiveWriter(w io.Writer) (*ArchiveWriter, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(ArchiveMagic[:]); err != nil {
		return nil, fmt.Errorf("logfmt: writing archive magic: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, Version); err != nil {
		return nil, fmt.Errorf("logfmt: writing archive version: %w", err)
	}
	return &ArchiveWriter{w: bw, written: archiveHeaderSize}, nil
}

// OpenArchiveAppend reopens an existing unterminated archive at path for
// further appends, truncating it to offset bytes first — the crash-recovery
// path of a checkpointed campaign: the checkpoint records how many archive
// bytes were durable, and everything after (partially written entries, logs
// from jobs the checkpoint does not cover) is discarded before resuming.
// The header is validated; count starts at entries, the caller-recorded
// entry count at that offset. The caller owns closing the returned file
// after Close-ing the writer.
func OpenArchiveAppend(path string, offset int64, entries int) (*ArchiveWriter, *os.File, error) {
	if offset < archiveHeaderSize {
		return nil, nil, fmt.Errorf("logfmt: archive resume offset %d is inside the header", offset)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("logfmt: opening %s for append: %w", path, err)
	}
	var hdr [archiveHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("logfmt: %s: reading archive header: %w", path, err)
	}
	if [4]byte(hdr[:4]) != ArchiveMagic {
		f.Close()
		return nil, nil, fmt.Errorf("%w: %s", ErrNotArchive, path)
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != Version {
		f.Close()
		return nil, nil, fmt.Errorf("%w: archive version %d (supported: %d)", ErrVersion, v, Version)
	}
	if err := f.Truncate(offset); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("logfmt: truncating %s to %d: %w", path, offset, err)
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("logfmt: seeking %s: %w", path, err)
	}
	return &ArchiveWriter{w: bufio.NewWriter(f), written: offset, count: entries}, f, nil
}

// Append adds one log to the archive.
func (aw *ArchiveWriter) Append(log *darshan.Log) error {
	if aw.closed {
		return errors.New("logfmt: append to closed archive")
	}
	buf := getBuf()
	defer putBuf(buf)
	if err := Write(buf, log); err != nil {
		return err
	}
	if buf.Len() > maxArchiveEntry {
		return fmt.Errorf("logfmt: log of %d bytes exceeds archive entry limit", buf.Len())
	}
	if err := binary.Write(aw.w, binary.LittleEndian, uint32(buf.Len())); err != nil {
		return fmt.Errorf("logfmt: writing entry length: %w", err)
	}
	if _, err := aw.w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("logfmt: writing entry: %w", err)
	}
	aw.count++
	aw.written += 4 + int64(buf.Len())
	return nil
}

// Count returns the number of logs appended so far.
func (aw *ArchiveWriter) Count() int { return aw.count }

// Offset returns the byte length of the archive body written so far
// (header plus complete entries, no terminator). After Flush (and an fsync
// by the file's owner) it is the durable resume point a checkpoint can
// record: truncating the file to Offset yields a valid unterminated archive
// containing exactly Count entries.
func (aw *ArchiveWriter) Offset() int64 { return aw.written }

// Flush pushes buffered entries to the underlying writer without
// terminating the archive.
func (aw *ArchiveWriter) Flush() error {
	if err := aw.w.Flush(); err != nil {
		return fmt.Errorf("logfmt: flushing archive: %w", err)
	}
	return nil
}

// Close writes the terminator and flushes. The underlying writer is not
// closed (the caller owns it).
func (aw *ArchiveWriter) Close() error {
	if aw.closed {
		return nil
	}
	aw.closed = true
	if err := binary.Write(aw.w, binary.LittleEndian, uint32(0)); err != nil {
		return fmt.Errorf("logfmt: writing archive terminator: %w", err)
	}
	if err := aw.w.Flush(); err != nil {
		return fmt.Errorf("logfmt: flushing archive: %w", err)
	}
	return nil
}

// ArchiveReader iterates the logs of a campaign archive, one at a time and
// with bounded memory: the per-entry scratch buffer is reused across Next
// calls, so iterating a multi-gigabyte archive holds only the largest
// single entry (plus the log currently decoded) in memory.
//
// Entry framing is independent of entry contents, so a corrupt embedded log
// does not end iteration: Next returns the parse error for that entry and
// the reader stays positioned at the following entry.
type ArchiveReader struct {
	r     *bufio.Reader
	lim   DecodeLimits
	done  bool
	off   int64  // stream offset of the next entry frame
	entry []byte // reused raw-entry scratch
	br    bytes.Reader
}

// NewArchiveReader validates the header and prepares iteration under
// DefaultLimits.
func NewArchiveReader(r io.Reader) (*ArchiveReader, error) {
	return NewArchiveReaderWithLimits(r, DefaultLimits())
}

// NewArchiveReaderWithLimits validates the header and prepares iteration.
// lim bounds both the entry frames (MaxArchiveEntry) and, through Next, the
// embedded logs' sections.
func NewArchiveReaderWithLimits(r io.Reader, lim DecodeLimits) (*ArchiveReader, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, decodeErrf(KindTruncated, "archive-header", 0, "reading magic: %v", err)
	}
	if magic != ArchiveMagic {
		return nil, fmt.Errorf("%w: got %q", ErrNotArchive, magic[:])
	}
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, decodeErrf(KindTruncated, "archive-header", 0, "reading version: %v", err)
	}
	if version != Version {
		return nil, decodeErrf(KindBadVersion, "archive-header", 0,
			"archive version %d (supported: %d)", version, Version)
	}
	return &ArchiveReader{r: br, lim: lim.sanitize(), off: archiveHeaderSize}, nil
}

// Damaged reports whether a framing error ended iteration: the stream
// position is lost and nothing after the damage point is reachable. It is
// false for per-entry parse errors, after which the reader remains usable.
func (ar *ArchiveReader) Damaged() bool { return ar.done }

// InputOffset returns the stream offset of the next entry frame.
func (ar *ArchiveReader) InputOffset() int64 { return ar.off }

// Next returns the next log, or io.EOF after the terminator. A parse error
// inside a well-framed entry reports that single bad entry as a
// *DecodeError (classified per the embedded log's damage: a log that ends
// mid-section inside its frame is KindTruncated even though the archive
// framing is intact — the streaming and recovery paths agree on this); the
// reader remains usable and the next call yields the following entry.
// Framing errors (truncation, an impossible entry length) end iteration:
// subsequent calls return io.EOF.
func (ar *ArchiveReader) Next() (*darshan.Log, error) {
	entryStart := ar.off
	raw, err := ar.NextRaw()
	if err != nil {
		return nil, err
	}
	ar.br.Reset(raw)
	log, err := ReadWithLimits(&ar.br, ar.lim)
	if err != nil {
		return nil, asDecodeError(err, "entry", entryStart)
	}
	return log, nil
}

// NextRaw returns the next entry's undecoded bytes, or io.EOF after the
// terminator. The returned slice aliases the reader's scratch and is valid
// only until the following Next/NextRaw call; callers that retain it must
// copy. This is the hand-off point for parallel ingestion: the framing walk
// stays sequential and cheap while the expensive inflate+decode of each
// entry can run elsewhere. Framing failures are *DecodeErrors at the
// entry-frame offset.
func (ar *ArchiveReader) NextRaw() ([]byte, error) {
	if ar.done {
		return nil, io.EOF
	}
	entryStart := ar.off
	var n uint32
	if err := binary.Read(ar.r, binary.LittleEndian, &n); err != nil {
		ar.done = true
		return nil, decodeErrf(KindTruncated, "entry-frame", entryStart, "reading entry length: %v", err)
	}
	if n == 0 {
		ar.done = true
		return nil, io.EOF
	}
	if int64(n) > int64(ar.lim.MaxArchiveEntry) {
		ar.done = true // framing lost: the claimed length cannot be trusted
		return nil, decodeErrf(KindLimitExceeded, "entry-frame", entryStart,
			"entry claims %d bytes (limit %d)", n, ar.lim.MaxArchiveEntry)
	}
	ar.entry = grow(ar.entry, int(n))
	if _, err := io.ReadFull(ar.r, ar.entry); err != nil {
		ar.done = true
		return nil, decodeErrf(KindTruncated, "entry-frame", entryStart,
			"reading %d-byte entry: %v", n, err)
	}
	ar.off += 4 + int64(n)
	return ar.entry, nil
}

// WriteArchiveFile writes all logs to a single archive at path.
func WriteArchiveFile(path string, logs []*darshan.Log) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("logfmt: creating %s: %w", path, err)
	}
	aw, err := NewArchiveWriter(f)
	if err != nil {
		f.Close()
		return err
	}
	for _, log := range logs {
		if err := aw.Append(log); err != nil {
			f.Close()
			return err
		}
	}
	if err := aw.Close(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("logfmt: closing %s: %w", path, err)
	}
	return nil
}

// RecoverArchiveFile salvages the complete entries of a damaged or
// unterminated archive — the state a crash mid-collection leaves behind. It
// returns every log that parses and the framing error that stopped recovery
// (io.EOF-equivalent clean ends return a nil error). Well-framed entries
// whose embedded log fails to parse are skipped, exactly as the streaming
// path (ReadArchiveFunc) skips them, so recovery and streaming agree on
// which entries a damaged archive yields and on how each failure is
// classified.
func RecoverArchiveFile(path string) ([]*darshan.Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("logfmt: opening %s: %w", path, err)
	}
	defer f.Close()
	ar, err := NewArchiveReader(f)
	if err != nil {
		return nil, fmt.Errorf("logfmt: %s: %w", path, err)
	}
	var logs []*darshan.Log
	for {
		log, err := ar.Next()
		if errors.Is(err, io.EOF) {
			return logs, nil
		}
		if err != nil {
			if ar.Damaged() {
				// Damage point reached: everything before it is saved.
				return logs, err
			}
			continue // corrupt entry inside intact framing: skip it
		}
		logs = append(logs, log)
	}
}

// ErrStop is returned by a ReadArchiveFunc callback to end iteration early
// without an error.
var ErrStop = errors.New("logfmt: stop iteration")

// ReadArchiveFunc streams the archive at path, invoking fn once per entry in
// order. Memory stays bounded: at most one decoded log exists at a time and
// the raw-entry scratch is reused, so archives far larger than RAM are
// ingestible. For an entry that fails to parse, fn receives a nil log and
// the parse error (a *DecodeError), and iteration continues with the
// following entry (entry framing is independent of entry contents). If fn
// returns ErrStop, iteration ends immediately with a nil error; any other
// non-nil return aborts with that error. Stream-level damage (truncation, a
// corrupt entry length) ends iteration with the framing error.
func ReadArchiveFunc(path string, fn func(index int, log *darshan.Log, err error) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("logfmt: opening %s: %w", path, err)
	}
	defer f.Close()
	ar, err := NewArchiveReader(f)
	if err != nil {
		return fmt.Errorf("logfmt: %s: %w", path, err)
	}
	for i := 0; ; i++ {
		log, err := ar.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil && ar.Damaged() {
			// Framing error: the stream position is lost, nothing after
			// this point is reachable.
			return fmt.Errorf("logfmt: %s entry %d: %w", path, i, err)
		}
		if cbErr := fn(i, log, err); cbErr != nil {
			if errors.Is(cbErr, ErrStop) {
				return nil
			}
			return cbErr
		}
	}
}

// ReadArchiveFile parses every log in the archive at path. Prefer
// ReadArchiveFunc (or ArchiveReader) for large archives: this helper
// materializes the whole archive in memory and stops at the first bad
// entry.
func ReadArchiveFile(path string) ([]*darshan.Log, error) {
	var logs []*darshan.Log
	err := ReadArchiveFunc(path, func(i int, log *darshan.Log, err error) error {
		if err != nil {
			return fmt.Errorf("logfmt: %s entry %d: %w", path, i, err)
		}
		logs = append(logs, log)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return logs, nil
}
