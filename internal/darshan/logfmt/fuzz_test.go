package logfmt

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// Fuzz limits: tight enough that a crafted input cannot make the fuzz
// harness itself allocate gigabytes, loose enough that the golden seeds
// decode cleanly.
func fuzzLimits() DecodeLimits {
	return DecodeLimits{
		MaxSectionBytes:    1 << 20,
		MaxCompressedBytes: 1 << 20,
		MaxRecords:         1 << 12,
		MaxNames:           1 << 12,
		MaxDXTTraces:       1 << 10,
		MaxDXTSegments:     1 << 10,
		MaxStringLen:       1 << 12,
		MaxMetadataPairs:   1 << 8,
		MaxArchiveEntry:    1 << 20,
	}
}

// checkDecodeErr asserts the error contract fuzzing enforces: every decode
// failure is a *DecodeError that unwraps to exactly one package sentinel.
func checkDecodeErr(t *testing.T, err error) {
	t.Helper()
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("decode failure is not a *DecodeError: %v", err)
	}
	sentinels := 0
	for _, s := range []error{ErrTruncated, ErrCorrupt, ErrLimit, ErrBadMagic, ErrVersion} {
		if errors.Is(err, s) {
			sentinels++
		}
	}
	if sentinels != 1 {
		t.Fatalf("error matches %d sentinels, want exactly 1: %v", sentinels, err)
	}
	if de.Section == "" {
		t.Fatalf("DecodeError without section: %v", err)
	}
}

func fuzzSeedBytes(f *testing.F) {
	f.Helper()
	golden, err := os.ReadFile(filepath.Join("testdata", "golden_v1.darshan"))
	if err != nil {
		f.Fatalf("reading golden seed: %v", err)
	}
	f.Add(golden)
	var buf bytes.Buffer
	if err := Write(&buf, sampleLog()); err != nil {
		f.Fatalf("encoding seed log: %v", err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(Magic[:])
	f.Add([]byte{'D', 'G', 'O', 'L', 1, 0, 0xFF, 0xFF})
}

// FuzzRead feeds arbitrary bytes to the single-log decoder. The properties
// under test: no panic, no unbounded allocation (the limits above cap every
// count the input controls), and every failure classified per the
// *DecodeError taxonomy. Successful decodes must re-encode.
func FuzzRead(f *testing.F) {
	fuzzSeedBytes(f)
	lim := fuzzLimits()
	f.Fuzz(func(t *testing.T, data []byte) {
		log, err := ReadWithLimits(bytes.NewReader(data), lim)
		if err != nil {
			checkDecodeErr(t, err)
			return
		}
		if log == nil {
			t.Fatal("nil log with nil error")
		}
		if err := Write(io.Discard, log); err != nil {
			t.Fatalf("decoded log failed to re-encode: %v", err)
		}
	})
}

// FuzzArchiveReader walks arbitrary bytes as a campaign archive. Properties:
// no panic, iteration always terminates, framing errors end iteration while
// per-entry parse errors do not, and every failure obeys the error taxonomy.
func FuzzArchiveReader(f *testing.F) {
	golden, err := os.ReadFile(filepath.Join("testdata", "golden_v1.darshan"))
	if err != nil {
		f.Fatalf("reading golden seed: %v", err)
	}
	var arch bytes.Buffer
	aw, err := NewArchiveWriter(&arch)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := aw.Append(sampleLog()); err != nil {
			f.Fatal(err)
		}
	}
	if err := aw.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(arch.Bytes())
	// A two-entry archive whose first entry is the golden log and whose
	// second is garbage inside a valid frame: exercises the skip path.
	var mixed bytes.Buffer
	mixed.Write(arch.Bytes()[:archiveHeaderSize])
	writeFrame := func(b []byte) {
		var n [4]byte
		n[0] = byte(len(b))
		n[1] = byte(len(b) >> 8)
		n[2] = byte(len(b) >> 16)
		n[3] = byte(len(b) >> 24)
		mixed.Write(n[:])
		mixed.Write(b)
	}
	writeFrame(golden)
	writeFrame([]byte("not a log at all"))
	mixed.Write([]byte{0, 0, 0, 0})
	f.Add(mixed.Bytes())
	f.Add([]byte{})
	f.Add(ArchiveMagic[:])

	lim := fuzzLimits()
	f.Fuzz(func(t *testing.T, data []byte) {
		ar, err := NewArchiveReaderWithLimits(bytes.NewReader(data), lim)
		if err != nil {
			if !errors.Is(err, ErrNotArchive) {
				checkDecodeErr(t, err)
			}
			return
		}
		lastOff := ar.InputOffset()
		for {
			_, err := ar.Next()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				checkDecodeErr(t, err)
				if ar.Damaged() {
					if _, err := ar.Next(); !errors.Is(err, io.EOF) {
						t.Fatalf("reader not terminal after framing damage: %v", err)
					}
					return
				}
			}
			// A usable reader must make progress or iteration never ends.
			if off := ar.InputOffset(); off <= lastOff {
				t.Fatalf("no forward progress: offset %d after %d", off, lastOff)
			} else {
				lastOff = off
			}
		}
	})
}
