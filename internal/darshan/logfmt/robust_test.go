package logfmt

import (
	"bytes"
	"compress/zlib"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"testing"

	"iolayers/internal/darshan"
)

// encodeSample serializes one sample log and returns the bytes.
func encodeSample(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, sampleLog()); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

// buildArchive returns a terminated archive holding n sample logs, plus the
// cumulative stream offset after each complete entry frame.
func buildArchive(t *testing.T, n int) (data []byte, entryEnds []int64) {
	t.Helper()
	var buf bytes.Buffer
	aw, err := NewArchiveWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := aw.Append(sampleLog()); err != nil {
			t.Fatal(err)
		}
		entryEnds = append(entryEnds, aw.Offset())
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), entryEnds
}

// TestArchiveTruncationEveryByte truncates a small archive at every byte
// boundary — inside the header, inside an entry length prefix, mid-payload,
// and at entry boundaries — and asserts the full robustness contract: no
// panic, the damage classified as truncation, and every entry that lies
// wholly before the cut still returned.
func TestArchiveTruncationEveryByte(t *testing.T) {
	data, entryEnds := buildArchive(t, 3)
	for cut := 0; cut <= len(data); cut++ {
		prefix := data[:cut]
		wantEntries := 0
		for _, end := range entryEnds {
			if int64(cut) >= end {
				wantEntries++
			}
		}
		ar, err := NewArchiveReader(bytes.NewReader(prefix))
		if err != nil {
			if cut >= archiveHeaderSize {
				t.Fatalf("cut=%d: header rejected despite being complete: %v", cut, err)
			}
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut=%d: header error kind = %v, want ErrTruncated", cut, err)
			}
			continue
		}
		if cut < archiveHeaderSize {
			t.Fatalf("cut=%d: incomplete header accepted", cut)
		}
		got := 0
		var finalErr error
		for {
			log, err := ar.Next()
			if err != nil {
				finalErr = err
				break
			}
			if log.Job.JobID != 4242 {
				t.Fatalf("cut=%d entry %d: decoded wrong log", cut, got)
			}
			got++
		}
		if got != wantEntries {
			t.Fatalf("cut=%d: salvaged %d entries, want %d", cut, got, wantEntries)
		}
		if cut == len(data) {
			if !errors.Is(finalErr, io.EOF) {
				t.Fatalf("intact archive ended with %v, want io.EOF", finalErr)
			}
			continue
		}
		if errors.Is(finalErr, io.EOF) {
			// A cut exactly before the terminator still means the archive is
			// unterminated: the reader must report truncation, not EOF.
			t.Fatalf("cut=%d: truncated archive reported clean EOF", cut)
		}
		var de *DecodeError
		if !errors.As(finalErr, &de) {
			t.Fatalf("cut=%d: error is not *DecodeError: %v", cut, finalErr)
		}
		if de.Kind != KindTruncated {
			t.Fatalf("cut=%d: kind = %v, want truncated (%v)", cut, de.Kind, finalErr)
		}
		if !ar.Damaged() {
			t.Fatalf("cut=%d: truncation did not mark the reader damaged", cut)
		}
	}
}

// TestZlibBombRejected verifies the declared-size defense: a section
// claiming a huge uncompressed size is rejected before any inflation or
// allocation happens, with a typed limit error locating the section.
func TestZlibBombRejected(t *testing.T) {
	data := encodeSample(t)
	// First section header starts after magic(4)+version(2)+count(2); its
	// uncompressedLen field sits 2 bytes in (after type and module).
	bomb := bytes.Clone(data)
	binary.LittleEndian.PutUint32(bomb[10:], 0xFFFFFFFF)
	_, err := Read(bytes.NewReader(bomb))
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("bomb decode error = %v, want ErrLimit", err)
	}
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("bomb error is not *DecodeError: %v", err)
	}
	if de.Kind != KindLimitExceeded || de.Section != "job" || de.Offset != 8 {
		t.Fatalf("bomb error = kind %v section %q offset %d, want limit-exceeded job 8",
			de.Kind, de.Section, de.Offset)
	}
}

// TestZlibBombRealPayload builds an actual bomb — kilobytes of compressed
// zeros declaring megabytes — and checks a tight limit stops it.
func TestZlibBombRealPayload(t *testing.T) {
	const inflated = 8 << 20
	var compressed bytes.Buffer
	zw := zlib.NewWriter(&compressed)
	if _, err := zw.Write(make([]byte, inflated)); err != nil {
		t.Fatal(err)
	}
	zw.Close()

	var buf bytes.Buffer
	buf.Write(Magic[:])
	binary.Write(&buf, binary.LittleEndian, Version)
	binary.Write(&buf, binary.LittleEndian, uint16(1))
	buf.WriteByte(sectionJob)
	buf.WriteByte(0)
	binary.Write(&buf, binary.LittleEndian, uint32(inflated))
	binary.Write(&buf, binary.LittleEndian, uint32(compressed.Len()))
	binary.Write(&buf, binary.LittleEndian, crc32.ChecksumIEEE(compressed.Bytes()))
	buf.Write(compressed.Bytes())

	lim := DefaultLimits()
	lim.MaxSectionBytes = 1 << 16
	_, err := ReadWithLimits(bytes.NewReader(buf.Bytes()), lim)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("real bomb error = %v, want ErrLimit", err)
	}
}

// TestDecodeLimitsCounts checks that each count the input controls is
// capped by its DecodeLimits field with a limit-exceeded classification.
func TestDecodeLimitsCounts(t *testing.T) {
	data := encodeSample(t)
	// sampleLog holds one record per module section; the records case needs
	// a section with several.
	rt := darshan.NewRuntime(darshan.JobHeader{JobID: 7, NProcs: 1})
	for _, p := range []string{"/gpfs/a", "/gpfs/b", "/gpfs/c"} {
		rt.Observe(darshan.Op{Module: darshan.ModulePOSIX, Path: p,
			Kind: darshan.OpWrite, Size: 1, Start: 1, End: 2})
	}
	var multi bytes.Buffer
	if err := Write(&multi, rt.Finalize()); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
		lim  DecodeLimits
	}{
		{"records", multi.Bytes(), DecodeLimits{MaxRecords: 1}},
		{"names", data, DecodeLimits{MaxNames: 1}},
		{"metadata", data, DecodeLimits{MaxMetadataPairs: 1}},
		{"strings", data, DecodeLimits{MaxStringLen: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadWithLimits(bytes.NewReader(tc.data), tc.lim)
			if !errors.Is(err, ErrLimit) {
				t.Fatalf("error = %v, want ErrLimit", err)
			}
			var de *DecodeError
			if !errors.As(err, &de) || de.Kind != KindLimitExceeded {
				t.Fatalf("error not classified limit-exceeded: %v", err)
			}
		})
	}
	// The same log under default limits decodes cleanly.
	if _, err := Read(bytes.NewReader(data)); err != nil {
		t.Fatalf("default limits rejected a valid log: %v", err)
	}
}

// TestCorruptSectionOffset flips a bit in the first section's compressed
// payload and checks the CRC failure is located at that section's offset.
func TestCorruptSectionOffset(t *testing.T) {
	data := encodeSample(t)
	corrupt := bytes.Clone(data)
	corrupt[30] ^= 0x40 // inside the job section's compressed bytes
	_, err := Read(bytes.NewReader(corrupt))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error = %v, want ErrCorrupt", err)
	}
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("error is not *DecodeError: %v", err)
	}
	if de.Kind != KindCorrupt || de.Offset != 8 {
		t.Fatalf("corruption located at kind %v offset %d, want corrupt at 8 (%v)",
			de.Kind, de.Offset, err)
	}
}

// TestArchiveEntryLimit checks an entry frame claiming more than
// MaxArchiveEntry ends iteration with a typed limit error.
func TestArchiveEntryLimit(t *testing.T) {
	data, _ := buildArchive(t, 1)
	huge := bytes.Clone(data)
	binary.LittleEndian.PutUint32(huge[archiveHeaderSize:], 0xFFFFFFF0)
	ar, err := NewArchiveReader(bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	_, err = ar.Next()
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("error = %v, want ErrLimit", err)
	}
	if !ar.Damaged() {
		t.Fatal("untrusted entry length must end iteration")
	}
	if _, err := ar.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("damaged reader returned %v, want io.EOF", err)
	}
}

// TestArchiveSkipsCorruptEntry checks the streaming reader reports a
// well-framed corrupt entry once and then continues with the following
// entry, and that RecoverArchiveFile agrees with the streaming path on the
// same bytes (satellite: the two paths used to diverge here).
func TestArchiveSkipsCorruptEntry(t *testing.T) {
	entry := encodeSample(t)
	frame := func(buf *bytes.Buffer, b []byte) {
		binary.Write(buf, binary.LittleEndian, uint32(len(b)))
		buf.Write(b)
	}
	var buf bytes.Buffer
	buf.Write(ArchiveMagic[:])
	binary.Write(&buf, binary.LittleEndian, Version)
	frame(&buf, entry)
	frame(&buf, []byte("framing is fine, contents are not"))
	frame(&buf, entry)
	binary.Write(&buf, binary.LittleEndian, uint32(0)) // terminator

	ar, err := NewArchiveReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var logs []*darshan.Log
	var entryErrs []*DecodeError
	for {
		log, err := ar.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			if ar.Damaged() {
				t.Fatalf("well-framed corruption marked the stream damaged: %v", err)
			}
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("entry error is not *DecodeError: %v", err)
			}
			entryErrs = append(entryErrs, de)
			continue
		}
		logs = append(logs, log)
	}
	if len(logs) != 2 || len(entryErrs) != 1 {
		t.Fatalf("streaming: %d logs and %d errors, want 2 and 1", len(logs), len(entryErrs))
	}
	if entryErrs[0].Kind != KindBadMagic {
		t.Fatalf("garbage entry classified %v, want bad-magic", entryErrs[0].Kind)
	}

	// Recovery over the identical bytes must agree: both good entries, nil
	// error (the framing is intact end to end).
	path := filepath.Join(t.TempDir(), "mixed.dgar")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	recovered, err := RecoverArchiveFile(path)
	if err != nil {
		t.Fatalf("RecoverArchiveFile: %v", err)
	}
	if len(recovered) != 2 {
		t.Fatalf("recovery salvaged %d logs, want 2 (same as streaming)", len(recovered))
	}
}
