// Package logfmt implements the self-describing, compressed, binary on-disk
// format for Darshan-equivalent logs (paper §2.2, Figure 2).
//
// A log file is a fixed header followed by a sequence of sections. Each
// section is independently zlib-compressed and CRC-checked, so a log remains
// partially readable if one section is damaged, and readers can skip
// sections they do not understand:
//
//	header:  magic "DGOL" | version u16 | section count u16
//	section: type u8 | module u8 | uncompressedLen u32 | compressedLen u32 |
//	         crc32(compressed) u32 | zlib payload
//
// Section types are job (the execution metadata record), names (the
// RecordID→path table), and module (one per instrumentation module). Module
// sections embed their counter-name tables, which is what makes the format
// self-describing: a reader confronted with records written by a newer
// module revision remaps counters by name rather than by index.
//
// All integers are little-endian.
package logfmt

import (
	"bytes"
	"compress/zlib"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"

	"iolayers/internal/darshan"
)

// Magic identifies a Darshan-Go log file.
var Magic = [4]byte{'D', 'G', 'O', 'L'}

// Version is the current format version. Readers accept only versions they
// know; the section framing lets future versions add section types without
// breaking old readers of the same version.
const Version uint16 = 1

// Section types.
const (
	sectionJob    uint8 = 0
	sectionNames  uint8 = 1
	sectionModule uint8 = 2
	sectionDXT    uint8 = 3
)

// Sentinel errors returned (wrapped) by Read.
var (
	// ErrBadMagic marks a file that is not a Darshan-Go log at all.
	ErrBadMagic = errors.New("logfmt: bad magic")
	// ErrVersion marks an unsupported format version.
	ErrVersion = errors.New("logfmt: unsupported version")
	// ErrCorrupt marks a CRC mismatch or malformed section payload.
	ErrCorrupt = errors.New("logfmt: corrupt log")
	// ErrTruncated marks a log that ends mid-section.
	ErrTruncated = errors.New("logfmt: truncated log")
)

// maxStringLen is the format's hard cap: strings are u16-length prefixed.
// Decode-side bounds (including tighter string limits) live in DecodeLimits.
const maxStringLen = 1 << 16

// Write serializes a log to w. All codec and scratch state is pooled, so
// steady-state writing allocates almost nothing per log.
func Write(w io.Writer, log *darshan.Log) error {
	if log == nil {
		return errors.New("logfmt: nil log")
	}
	modules := modulesInLog(log)
	sectionCount := 2 + len(modules)
	if len(log.DXT) > 0 {
		sectionCount++
	}

	bw, flush := buffered(w)
	var hdr [8]byte
	copy(hdr[:4], Magic[:])
	binary.LittleEndian.PutUint16(hdr[4:], Version)
	binary.LittleEndian.PutUint16(hdr[6:], uint16(sectionCount))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("logfmt: writing header: %w", err)
	}

	scratch := getBuf()    // section payload under construction
	compressed := getBuf() // its deflated form
	zw := getZlibWriter(io.Discard)
	defer func() {
		putZlibWriter(zw)
		putBuf(compressed)
		putBuf(scratch)
	}()
	e := encoder{buf: scratch}

	section := func(sectionType, module uint8) error {
		err := writeSection(bw, sectionType, module, scratch.Bytes(), compressed, zw)
		scratch.Reset()
		return err
	}

	encodeJob(&e, log.Job)
	if err := section(sectionJob, 0); err != nil {
		return err
	}
	encodeNames(&e, log.Names)
	if err := section(sectionNames, 0); err != nil {
		return err
	}
	for _, m := range modules {
		encodeModule(&e, m, log.Records)
		if err := section(sectionModule, uint8(m)); err != nil {
			return err
		}
	}
	if len(log.DXT) > 0 {
		encodeDXT(&e, log.DXT)
		if err := section(sectionDXT, 0); err != nil {
			return err
		}
	}
	return flush()
}

// WriteFile writes a log to path, creating or truncating it.
func WriteFile(path string, log *darshan.Log) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("logfmt: creating %s: %w", path, err)
	}
	if err := Write(f, log); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("logfmt: closing %s: %w", path, err)
	}
	return nil
}

func modulesInLog(log *darshan.Log) []darshan.ModuleID {
	seen := map[darshan.ModuleID]bool{}
	for _, r := range log.Records {
		seen[r.Module] = true
	}
	mods := make([]darshan.ModuleID, 0, len(seen))
	for m := range seen {
		mods = append(mods, m)
	}
	sort.Slice(mods, func(i, j int) bool { return mods[i] < mods[j] })
	return mods
}

func writeSection(w io.Writer, sectionType, module uint8, payload []byte,
	compressed *bytes.Buffer, zw *zlib.Writer) error {
	compressed.Reset()
	zw.Reset(compressed)
	if _, err := zw.Write(payload); err != nil {
		return fmt.Errorf("logfmt: compressing section %d: %w", sectionType, err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("logfmt: finishing compression: %w", err)
	}
	var hdr [14]byte
	hdr[0] = sectionType
	hdr[1] = module
	binary.LittleEndian.PutUint32(hdr[2:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[6:], uint32(compressed.Len()))
	binary.LittleEndian.PutUint32(hdr[10:], crc32.ChecksumIEEE(compressed.Bytes()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("logfmt: writing section header: %w", err)
	}
	if _, err := w.Write(compressed.Bytes()); err != nil {
		return fmt.Errorf("logfmt: writing section payload: %w", err)
	}
	return nil
}

// encoder accumulates little-endian primitives into a caller-owned (pooled)
// buffer; all encode* helpers build on it. Writes to a bytes.Buffer cannot
// fail, so no error plumbing.
type encoder struct{ buf *bytes.Buffer }

func (e *encoder) u8(v uint8) { e.buf.WriteByte(v) }
func (e *encoder) u16(v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	e.buf.Write(b[:])
}
func (e *encoder) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.buf.Write(b[:])
}
func (e *encoder) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf.Write(b[:])
}
func (e *encoder) i64(v int64) { e.u64(uint64(v)) }
func (e *encoder) i32(v int32) { e.u32(uint32(v)) }
func (e *encoder) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *encoder) str(s string) {
	if len(s) >= maxStringLen {
		s = s[:maxStringLen-1]
	}
	e.u16(uint16(len(s)))
	e.buf.WriteString(s)
}

func encodeJob(e *encoder, job darshan.JobHeader) {
	e.u64(job.JobID)
	e.u64(job.UserID)
	e.u32(uint32(job.NProcs))
	e.i64(job.StartTime)
	e.i64(job.EndTime)
	e.str(job.Exe)
	keys := make([]string, 0, len(job.Metadata))
	for k := range job.Metadata {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.u16(uint16(len(keys)))
	for _, k := range keys {
		e.str(k)
		e.str(job.Metadata[k])
	}
}

func encodeNames(e *encoder, names map[darshan.RecordID]string) {
	ids := make([]darshan.RecordID, 0, len(names))
	for id := range names {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.u32(uint32(len(ids)))
	for _, id := range ids {
		e.u64(uint64(id))
		e.str(names[id])
	}
}

func encodeDXT(e *encoder, traces []darshan.DXTTrace) {
	e.u32(uint32(len(traces)))
	for _, tr := range traces {
		e.u8(uint8(tr.Module))
		e.u64(uint64(tr.Record))
		e.i32(tr.Rank)
		e.u32(uint32(len(tr.Segments)))
		for _, s := range tr.Segments {
			e.u8(uint8(s.Kind))
			e.i64(s.Offset)
			e.i64(s.Length)
			e.f64(s.Start)
			e.f64(s.End)
		}
	}
}

// encodeModule serializes the records of one module, filtering allRecords in
// place (no intermediate per-module slice).
func encodeModule(e *encoder, m darshan.ModuleID, allRecords []*darshan.FileRecord) {
	counterNames := darshan.CounterNames(m)
	fcounterNames := darshan.FCounterNames(m)
	e.u16(uint16(len(counterNames)))
	for _, n := range counterNames {
		e.str(n)
	}
	e.u16(uint16(len(fcounterNames)))
	for _, n := range fcounterNames {
		e.str(n)
	}
	count := uint32(0)
	for _, r := range allRecords {
		if r.Module == m {
			count++
		}
	}
	e.u32(count)
	for _, r := range allRecords {
		if r.Module != m {
			continue
		}
		e.u64(uint64(r.Record))
		e.i32(r.Rank)
		for _, c := range r.Counters {
			e.i64(c)
		}
		for _, f := range r.FCounters {
			e.f64(f)
		}
	}
}
