// Package darshan implements an application-level I/O characterization
// runtime and record model equivalent to the Darshan 3.x tool the paper's
// datasets were collected with.
//
// The package mirrors Darshan's architecture (paper §2.2, Figure 2): an
// instrumentation core observes the I/O operations an application issues
// through each interface module (POSIX, MPI-IO, STDIO, plus a Lustre
// file-system module), accumulates per-(file, rank) counter records, reduces
// records for globally shared files to a single rank −1 record, and emits a
// compressed self-describing log (package logfmt) when the job finalizes.
package darshan

import "fmt"

// ModuleID identifies an instrumentation module within a log. Values are
// stable on disk; never renumber them.
type ModuleID uint8

// The instrumentation modules this runtime implements. These are the three
// I/O interfaces the paper analyzes plus the Lustre module that records
// striping metadata on Lustre-backed files.
const (
	ModulePOSIX  ModuleID = 1
	ModuleMPIIO  ModuleID = 2
	ModuleSTDIO  ModuleID = 3
	ModuleLustre ModuleID = 4
)

// String returns the conventional module name, e.g. "POSIX".
func (m ModuleID) String() string {
	switch m {
	case ModulePOSIX:
		return "POSIX"
	case ModuleMPIIO:
		return "MPI-IO"
	case ModuleSTDIO:
		return "STDIO"
	case ModuleLustre:
		return "LUSTRE"
	case ModuleStdioX:
		return "STDIOX"
	default:
		return fmt.Sprintf("MODULE(%d)", uint8(m))
	}
}

// Modules returns the interface modules in a stable order. The Lustre module
// is included last; it holds metadata rather than I/O operations.
func Modules() []ModuleID {
	return []ModuleID{ModulePOSIX, ModuleMPIIO, ModuleSTDIO, ModuleLustre}
}

// InterfaceModules returns the three I/O interface modules (no Lustre).
func InterfaceModules() []ModuleID {
	return []ModuleID{ModulePOSIX, ModuleMPIIO, ModuleSTDIO}
}

// CounterNames returns the integer-counter name table for a module, in
// counter-index order. The names follow Darshan's counter naming so that
// logs are self-describing to anyone familiar with darshan-parser output.
func CounterNames(m ModuleID) []string {
	switch m {
	case ModulePOSIX:
		return posixCounterNames[:]
	case ModuleMPIIO:
		return mpiioCounterNames[:]
	case ModuleSTDIO:
		return stdioCounterNames[:]
	case ModuleLustre:
		return lustreCounterNames[:]
	case ModuleStdioX:
		return stdioXCounterNames[:]
	default:
		return nil
	}
}

// FCounterNames returns the floating-point counter name table for a module.
func FCounterNames(m ModuleID) []string {
	switch m {
	case ModulePOSIX:
		return posixFCounterNames[:]
	case ModuleMPIIO:
		return mpiioFCounterNames[:]
	case ModuleSTDIO:
		return stdioFCounterNames[:]
	case ModuleLustre:
		return nil
	default:
		return nil
	}
}

// NumCounters returns the integer-counter record width for a module.
func NumCounters(m ModuleID) int { return len(CounterNames(m)) }

// NumFCounters returns the float-counter record width for a module.
func NumFCounters(m ModuleID) int { return len(FCounterNames(m)) }
