package darshan

import (
	"fmt"
	"sync"
	"testing"

	"iolayers/internal/units"
)

func testJob(nprocs int) JobHeader {
	return JobHeader{
		JobID:     101,
		UserID:    7,
		NProcs:    nprocs,
		StartTime: 1000,
		EndTime:   1600,
		Exe:       "/sw/app/sim.x",
		Metadata:  map[string]string{"project": "PHY123"},
	}
}

func TestModuleNames(t *testing.T) {
	want := map[ModuleID]string{
		ModulePOSIX:  "POSIX",
		ModuleMPIIO:  "MPI-IO",
		ModuleSTDIO:  "STDIO",
		ModuleLustre: "LUSTRE",
	}
	for m, name := range want {
		if m.String() != name {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), name)
		}
	}
	if ModuleID(99).String() != "MODULE(99)" {
		t.Errorf("unknown module string = %q", ModuleID(99).String())
	}
}

func TestCounterTableWidths(t *testing.T) {
	cases := []struct {
		m         ModuleID
		counters  int
		fcounters int
	}{
		{ModulePOSIX, NumPosixCounters, NumPosixFCounters},
		{ModuleMPIIO, NumMpiioCounters, NumMpiioFCounters},
		{ModuleSTDIO, NumStdioCounters, NumStdioFCounters},
		{ModuleLustre, NumLustreCounters, 0},
	}
	for _, c := range cases {
		if got := NumCounters(c.m); got != c.counters {
			t.Errorf("%v NumCounters = %d, want %d", c.m, got, c.counters)
		}
		if got := NumFCounters(c.m); got != c.fcounters {
			t.Errorf("%v NumFCounters = %d, want %d", c.m, got, c.fcounters)
		}
	}
}

func TestCounterNamesUniqueAndComplete(t *testing.T) {
	for _, m := range Modules() {
		names := CounterNames(m)
		seen := map[string]bool{}
		for i, n := range names {
			if n == "" {
				t.Errorf("%v counter %d has empty name", m, i)
			}
			if seen[n] {
				t.Errorf("%v counter name %q duplicated", m, n)
			}
			seen[n] = true
		}
		for i, n := range FCounterNames(m) {
			if n == "" {
				t.Errorf("%v fcounter %d has empty name", m, i)
			}
		}
	}
}

func TestPosixSizeBinCounterNames(t *testing.T) {
	names := CounterNames(ModulePOSIX)
	if names[PosixSizeRead0To100] != "POSIX_SIZE_READ_0_100" {
		t.Errorf("first read bin = %q", names[PosixSizeRead0To100])
	}
	if names[PosixSizeRead0To100+9] != "POSIX_SIZE_READ_1G_PLUS" {
		t.Errorf("last read bin = %q", names[PosixSizeRead0To100+9])
	}
	if names[PosixSizeWrite0To100] != "POSIX_SIZE_WRITE_0_100" {
		t.Errorf("first write bin = %q", names[PosixSizeWrite0To100])
	}
	if names[PosixSizeWrite0To100+9] != "POSIX_SIZE_WRITE_1G_PLUS" {
		t.Errorf("last write bin = %q", names[PosixSizeWrite0To100+9])
	}
}

func TestHashPathStable(t *testing.T) {
	a := HashPath("/gpfs/alpine/proj/file.dat")
	b := HashPath("/gpfs/alpine/proj/file.dat")
	c := HashPath("/gpfs/alpine/proj/file2.dat")
	if a != b {
		t.Error("same path hashed differently")
	}
	if a == c {
		t.Error("different paths collided (expected for FNV on near-identical strings only with astronomically low probability)")
	}
}

func TestJobHeaderRuntimeAndNodeHours(t *testing.T) {
	j := testJob(84)
	if j.Runtime() != 600 {
		t.Errorf("Runtime = %v, want 600", j.Runtime())
	}
	// 84 procs at 42 procs/node = 2 nodes, 600s = 1/6 h each.
	if got := j.NodeHours(42); got != 2*600.0/3600 {
		t.Errorf("NodeHours = %v", got)
	}
	j.EndTime = j.StartTime - 5
	if j.Runtime() != 0 {
		t.Errorf("negative runtime not clamped: %v", j.Runtime())
	}
}

func TestNodeHoursPanicsOnBadDensity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	testJob(4).NodeHours(0)
}

func TestObservePosixReadWrite(t *testing.T) {
	rt := NewRuntime(testJob(1))
	path := "/gpfs/alpine/d/x.h5"
	rt.Observe(Op{Module: ModulePOSIX, Path: path, Rank: 0, Kind: OpOpen, Start: 1, End: 1.01})
	rt.Observe(Op{Module: ModulePOSIX, Path: path, Rank: 0, Kind: OpRead, Size: 64 * units.KiB, Offset: 0, Start: 1.1, End: 1.2})
	rt.Observe(Op{Module: ModulePOSIX, Path: path, Rank: 0, Kind: OpRead, Size: 64 * units.KiB, Offset: 64 * 1024, Start: 1.2, End: 1.3})
	rt.Observe(Op{Module: ModulePOSIX, Path: path, Rank: 0, Kind: OpWrite, Size: 2 * units.MiB, Offset: 0, Start: 2, End: 2.5})
	rt.Observe(Op{Module: ModulePOSIX, Path: path, Rank: 0, Kind: OpClose, Start: 3, End: 3.001})
	log := rt.Finalize()

	recs := log.RecordsFor(ModulePOSIX)
	if len(recs) != 1 {
		t.Fatalf("got %d POSIX records, want 1", len(recs))
	}
	r := recs[0]
	if r.Counters[PosixOpens] != 1 || r.Counters[PosixReads] != 2 || r.Counters[PosixWrites] != 1 {
		t.Errorf("op counts: opens=%d reads=%d writes=%d",
			r.Counters[PosixOpens], r.Counters[PosixReads], r.Counters[PosixWrites])
	}
	if r.Counters[PosixBytesRead] != 128*1024 {
		t.Errorf("BytesRead = %d", r.Counters[PosixBytesRead])
	}
	if r.Counters[PosixBytesWritten] != 2*1024*1024 {
		t.Errorf("BytesWritten = %d", r.Counters[PosixBytesWritten])
	}
	if r.Counters[PosixSizeRead0To100+int(units.Bin10KTo100K)] != 2 {
		t.Errorf("read histogram bin 10K_100K = %d, want 2",
			r.Counters[PosixSizeRead0To100+int(units.Bin10KTo100K)])
	}
	if r.Counters[PosixSizeWrite0To100+int(units.Bin1MTo4M)] != 1 {
		t.Errorf("write histogram bin 1M_4M = %d, want 1",
			r.Counters[PosixSizeWrite0To100+int(units.Bin1MTo4M)])
	}
	// Second read is both sequential and consecutive.
	if r.Counters[PosixConsecReads] != 1 || r.Counters[PosixSeqReads] != 1 {
		t.Errorf("consec=%d seq=%d, want 1/1",
			r.Counters[PosixConsecReads], r.Counters[PosixSeqReads])
	}
	if got := r.FCounters[PosixFReadTime]; !close(got, 0.2) {
		t.Errorf("FReadTime = %v, want 0.2", got)
	}
	if got := r.FCounters[PosixFWriteTime]; !close(got, 0.5) {
		t.Errorf("FWriteTime = %v, want 0.5", got)
	}
	if r.Counters[PosixMaxByteRead] != 128*1024-1 {
		t.Errorf("MaxByteRead = %d", r.Counters[PosixMaxByteRead])
	}
	if log.PathOf(r.Record) != path {
		t.Errorf("PathOf = %q", log.PathOf(r.Record))
	}
}

func close(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func TestObserveStdioHasNoSizeHistogram(t *testing.T) {
	rt := NewRuntime(testJob(1))
	rt.Observe(Op{Module: ModuleSTDIO, Path: "/p/log.txt", Rank: 0, Kind: OpWrite, Size: 100, Offset: 0, Start: 0.5, End: 0.6})
	rt.Observe(Op{Module: ModuleSTDIO, Path: "/p/log.txt", Rank: 0, Kind: OpFlush, Start: 0.6, End: 0.61})
	log := rt.Finalize()
	recs := log.RecordsFor(ModuleSTDIO)
	if len(recs) != 1 {
		t.Fatalf("got %d STDIO records", len(recs))
	}
	r := recs[0]
	if len(r.Counters) != NumStdioCounters {
		t.Errorf("STDIO record width %d, want %d", len(r.Counters), NumStdioCounters)
	}
	if r.Counters[StdioWrites] != 1 || r.Counters[StdioBytesWritten] != 100 || r.Counters[StdioFlushes] != 1 {
		t.Errorf("stdio counters: %v", r.Counters)
	}
	for _, n := range CounterNames(ModuleSTDIO) {
		if len(n) >= 10 && n[:10] == "STDIO_SIZE" {
			t.Errorf("STDIO module unexpectedly has size-histogram counter %q", n)
		}
	}
}

func TestObserveMpiioCollectiveVsIndependent(t *testing.T) {
	rt := NewRuntime(testJob(2))
	p := "/lustre/cs/f.nc"
	rt.Observe(Op{Module: ModuleMPIIO, Path: p, Rank: 0, Kind: OpOpen, Collective: true, Start: 0, End: 0.01})
	rt.Observe(Op{Module: ModuleMPIIO, Path: p, Rank: 0, Kind: OpWrite, Collective: true, Size: units.MiB, Start: 0.1, End: 0.3})
	rt.Observe(Op{Module: ModuleMPIIO, Path: p, Rank: 0, Kind: OpRead, Size: units.KiB, Start: 0.4, End: 0.41})
	log := rt.Finalize()
	r := log.RecordsFor(ModuleMPIIO)[0]
	if r.Counters[MpiioCollOpens] != 1 || r.Counters[MpiioIndepOpens] != 0 {
		t.Errorf("coll/indep opens = %d/%d", r.Counters[MpiioCollOpens], r.Counters[MpiioIndepOpens])
	}
	if r.Counters[MpiioCollWrites] != 1 || r.Counters[MpiioIndepReads] != 1 {
		t.Errorf("coll writes=%d indep reads=%d", r.Counters[MpiioCollWrites], r.Counters[MpiioIndepReads])
	}
}

func TestSharedFileReduction(t *testing.T) {
	nprocs := 4
	rt := NewRuntime(testJob(nprocs))
	p := "/gpfs/alpine/shared.chk"
	for rank := int32(0); rank < int32(nprocs); rank++ {
		rt.Observe(Op{Module: ModulePOSIX, Path: p, Rank: rank, Kind: OpOpen, Start: 0.1, End: 0.11})
		rt.Observe(Op{Module: ModulePOSIX, Path: p, Rank: rank, Kind: OpWrite,
			Size: units.MiB, Offset: int64(rank) * 1024 * 1024, Start: 1, End: 1.5})
	}
	log := rt.Finalize()
	recs := log.RecordsFor(ModulePOSIX)
	if len(recs) != 1 {
		t.Fatalf("got %d records after reduction, want 1", len(recs))
	}
	r := recs[0]
	if r.Rank != SharedRank {
		t.Errorf("reduced rank = %d, want %d", r.Rank, SharedRank)
	}
	if r.Counters[PosixWrites] != 4 || r.Counters[PosixBytesWritten] != 4*1024*1024 {
		t.Errorf("reduced writes=%d bytes=%d", r.Counters[PosixWrites], r.Counters[PosixBytesWritten])
	}
	// Summed write time across ranks.
	if !close(r.FCounters[PosixFWriteTime], 4*0.5) {
		t.Errorf("reduced FWriteTime = %v, want 2.0", r.FCounters[PosixFWriteTime])
	}
	// Slowest rank spent 0.5s writing + 0.01s meta.
	if !close(r.FCounters[PosixFSlowestRankTime], 0.51) {
		t.Errorf("SlowestRankTime = %v, want 0.51", r.FCounters[PosixFSlowestRankTime])
	}
	if r.Counters[PosixMaxByteWritten] != 4*1024*1024-1 {
		t.Errorf("reduced MaxByteWritten = %d", r.Counters[PosixMaxByteWritten])
	}
}

func TestPartialRankSetNotReduced(t *testing.T) {
	rt := NewRuntime(testJob(4))
	p := "/gpfs/alpine/partial.dat"
	for _, rank := range []int32{0, 2} {
		rt.Observe(Op{Module: ModulePOSIX, Path: p, Rank: rank, Kind: OpRead,
			Size: units.KiB, Offset: 0, Start: 1, End: 1.1})
	}
	log := rt.Finalize()
	recs := log.RecordsFor(ModulePOSIX)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2 (no reduction for partial rank sets)", len(recs))
	}
	for _, r := range recs {
		if r.Rank == SharedRank {
			t.Error("partial rank set was reduced to SharedRank")
		}
	}
}

func TestPreReducedSharedRankPassesThrough(t *testing.T) {
	rt := NewRuntime(testJob(8))
	rt.Observe(Op{Module: ModulePOSIX, Path: "/p/f", Rank: SharedRank, Kind: OpWrite,
		Size: units.GiB, Offset: 0, Start: 0, End: 10})
	log := rt.Finalize()
	recs := log.RecordsFor(ModulePOSIX)
	if len(recs) != 1 || recs[0].Rank != SharedRank {
		t.Fatalf("pre-reduced record mangled: %+v", recs)
	}
	if recs[0].Counters[PosixBytesWritten] != int64(units.GiB) {
		t.Errorf("bytes = %d", recs[0].Counters[PosixBytesWritten])
	}
}

func TestLustreStripingRecord(t *testing.T) {
	rt := NewRuntime(testJob(1))
	rt.SetLustreStriping("/lustre/cs/f", 248, 1, 17, units.MiB, 8)
	log := rt.Finalize()
	recs := log.RecordsFor(ModuleLustre)
	if len(recs) != 1 {
		t.Fatalf("got %d lustre records", len(recs))
	}
	r := recs[0]
	if r.Counters[LustreOSTs] != 248 || r.Counters[LustreStripeWidth] != 8 ||
		r.Counters[LustreStripeSize] != int64(units.MiB) || r.Counters[LustreStripeOffset] != 17 {
		t.Errorf("lustre counters: %v", r.Counters)
	}
}

func TestFinalizeDeterministicOrder(t *testing.T) {
	build := func() *Log {
		rt := NewRuntime(testJob(1))
		for i := 0; i < 50; i++ {
			p := fmt.Sprintf("/p/file%02d", i)
			rt.Observe(Op{Module: ModulePOSIX, Path: p, Rank: 0, Kind: OpWrite,
				Size: 100, Offset: 0, Start: 1, End: 1.1})
			rt.Observe(Op{Module: ModuleSTDIO, Path: p + ".log", Rank: 0, Kind: OpWrite,
				Size: 10, Offset: 0, Start: 1, End: 1.1})
		}
		return rt.Finalize()
	}
	a, b := build(), build()
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i].Module != b.Records[i].Module || a.Records[i].Record != b.Records[i].Record {
			t.Fatalf("record order differs at %d", i)
		}
	}
}

func TestConcurrentObserve(t *testing.T) {
	nprocs := 8
	rt := NewRuntime(testJob(nprocs))
	var wg sync.WaitGroup
	for rank := 0; rank < nprocs; rank++ {
		wg.Add(1)
		go func(rank int32) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				rt.Observe(Op{Module: ModulePOSIX, Path: "/shared/file", Rank: rank,
					Kind: OpWrite, Size: 4096, Offset: int64(i) * 4096, Start: float64(i), End: float64(i) + 0.5})
			}
		}(int32(rank))
	}
	wg.Wait()
	log := rt.Finalize()
	recs := log.RecordsFor(ModulePOSIX)
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1 reduced", len(recs))
	}
	if recs[0].Counters[PosixWrites] != int64(nprocs*100) {
		t.Errorf("writes = %d, want %d", recs[0].Counters[PosixWrites], nprocs*100)
	}
}

func TestRuntimePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero procs", func() { NewRuntime(JobHeader{NProcs: 0}) })
	mustPanic("observe after finalize", func() {
		rt := NewRuntime(testJob(1))
		rt.Finalize()
		rt.Observe(Op{Module: ModulePOSIX, Path: "/p", Kind: OpOpen})
	})
	mustPanic("double finalize", func() {
		rt := NewRuntime(testJob(1))
		rt.Finalize()
		rt.Finalize()
	})
	mustPanic("end before start", func() {
		rt := NewRuntime(testJob(1))
		rt.Observe(Op{Module: ModulePOSIX, Path: "/p", Kind: OpRead, Start: 2, End: 1})
	})
	mustPanic("lustre module via Observe", func() {
		rt := NewRuntime(testJob(1))
		rt.Observe(Op{Module: ModuleLustre, Path: "/p", Kind: OpRead, Start: 0, End: 1})
	})
}

func TestOpKindString(t *testing.T) {
	kinds := map[OpKind]string{
		OpOpen: "open", OpRead: "read", OpWrite: "write", OpSeek: "seek",
		OpStat: "stat", OpFlush: "flush", OpFsync: "fsync", OpClose: "close",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if OpKind(42).String() != "OpKind(42)" {
		t.Errorf("unknown kind = %q", OpKind(42).String())
	}
}

func TestFileRecordClone(t *testing.T) {
	r := NewFileRecord(ModulePOSIX, 9, 0)
	r.Counters[PosixReads] = 5
	c := r.Clone()
	c.Counters[PosixReads] = 10
	if r.Counters[PosixReads] != 5 {
		t.Error("Clone shares counter storage")
	}
}
