package darshan

import "fmt"

// ModuleStdioX is the extended STDIO instrumentation module implementing the
// paper's Recommendation 4: the production Darshan STDIO module records no
// per-request sizes, no sequentiality, and nothing about rewrites — exactly
// the information needed to reason about SSD write amplification on the
// in-system layers. This module adds those counters. It is disabled by
// default (matching the paper's world) and enabled per runtime with
// EnableExtendedStdio.
const ModuleStdioX ModuleID = 5

// Extended-STDIO integer counters: the access-size histograms Darshan lacks
// for STDIO, plus sequentiality and rewrite accounting.
const (
	StdioXSizeRead0To100 = iota // first of 10 read-size histogram bins
	stdioXSizeReadEnd    = StdioXSizeRead0To100 + 9

	StdioXSizeWrite0To100 = stdioXSizeReadEnd + 1 // first of 10 write-size bins
	stdioXSizeWriteEnd    = StdioXSizeWrite0To100 + 9

	// StdioXSeqWrites counts writes at or beyond the previous write end.
	StdioXSeqWrites = stdioXSizeWriteEnd + 1
	// StdioXConsecWrites counts writes exactly at the previous write end.
	StdioXConsecWrites = StdioXSeqWrites + 1
	// StdioXRewriteBytes counts written bytes that landed at or below the
	// file's previous high-water mark — dynamic data, the population that
	// amplifies writes on flash (paper §3.3.1).
	StdioXRewriteBytes = StdioXConsecWrites + 1
	// StdioXUniqueBytes counts written bytes that extended the high-water
	// mark — static data written once.
	StdioXUniqueBytes = StdioXRewriteBytes + 1

	// NumStdioXCounters is the extended-STDIO integer-record width.
	NumStdioXCounters = StdioXUniqueBytes + 1
)

var stdioXCounterNames = func() [NumStdioXCounters]string {
	var names [NumStdioXCounters]string
	fillSizeBins(names[:], StdioXSizeRead0To100, "STDIOX_SIZE_READ_")
	fillSizeBins(names[:], StdioXSizeWrite0To100, "STDIOX_SIZE_WRITE_")
	names[StdioXSeqWrites] = "STDIOX_SEQ_WRITES"
	names[StdioXConsecWrites] = "STDIOX_CONSEC_WRITES"
	names[StdioXRewriteBytes] = "STDIOX_REWRITE_BYTES"
	names[StdioXUniqueBytes] = "STDIOX_UNIQUE_BYTES"
	return names
}()

// DXTSegment is one traced I/O operation in a Darshan eXtended Tracing
// record: the exact offset, length, and time window of a single call. The
// paper (§2.2) notes DXT exists for POSIX and MPI-IO only, is disabled by
// default on both systems, and never traces STDIO; this implementation
// follows all three properties.
type DXTSegment struct {
	Kind       OpKind
	Offset     int64
	Length     int64
	Start, End float64
}

// DXTTrace is the ordered segment list of one (module, file, rank) triple.
type DXTTrace struct {
	Module   ModuleID
	Record   RecordID
	Rank     int32
	Segments []DXTSegment
}

// validateDXTModule reports whether a module is traceable by DXT.
func validateDXTModule(m ModuleID) error {
	if m != ModulePOSIX && m != ModuleMPIIO {
		return fmt.Errorf("darshan: DXT traces POSIX and MPI-IO only, not %v", m)
	}
	return nil
}
