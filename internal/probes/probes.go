// Package probes implements a TOKIO-style performance probing harness
// (Lockwood et al., "A Year in the Life of a Parallel File System" — the
// paper's reference [11]): a fixed set of benchmark-like I/O probes runs
// repeatedly against the simulated storage layers, and the delivered
// bandwidth time series exposes production variability — the third data
// source (sampling, S.D.) in the paper's Table 1 taxonomy, complementing
// the application-level Darshan logs and the server-side collectors.
package probes

import (
	"context"
	"fmt"
	"math"
	"sort"

	"iolayers/internal/dist"
	"iolayers/internal/iosim"
	"iolayers/internal/stats"
	"iolayers/internal/units"
)

// Probe is one fixed benchmark configuration, run identically every sample.
type Probe struct {
	// Name identifies the probe in results, e.g. "bulk-write".
	Name string
	// RW is the transfer direction.
	RW iosim.RW
	// Size is the per-sample transfer size.
	Size units.ByteSize
	// Procs is the process count the probe runs with.
	Procs int
}

// DefaultProbes returns the four-probe set TOKIO used: large streaming
// writes and reads (IOR-like) plus small-transfer probes in both
// directions.
func DefaultProbes() []Probe {
	return []Probe{
		{Name: "bulk-write", RW: iosim.Write, Size: 4 * units.GiB, Procs: 128},
		{Name: "bulk-read", RW: iosim.Read, Size: 4 * units.GiB, Procs: 128},
		{Name: "small-write", RW: iosim.Write, Size: 64 * units.KiB, Procs: 1},
		{Name: "small-read", RW: iosim.Read, Size: 64 * units.KiB, Procs: 1},
	}
}

// Sample is one probe execution's outcome.
type Sample struct {
	Probe  string
	Layer  string
	Index  int
	MBps   float64
	Second float64 // duration of this sample
}

// Harness runs probe sets against every layer of a system.
type Harness struct {
	sys    *iosim.System
	probes []Probe
	seed   uint64
}

// NewHarness builds a harness; an empty probe list gets DefaultProbes.
func NewHarness(sys *iosim.System, seed uint64, probes ...Probe) *Harness {
	if sys == nil {
		panic("probes: nil system")
	}
	if len(probes) == 0 {
		probes = DefaultProbes()
	}
	for _, p := range probes {
		if p.Size <= 0 || p.Procs <= 0 || p.Name == "" {
			panic(fmt.Sprintf("probes: invalid probe %+v", p))
		}
	}
	return &Harness{sys: sys, probes: probes, seed: seed}
}

// Run executes every probe `samples` times on every layer and returns the
// full time series, deterministic for a given harness seed.
func (h *Harness) Run(samples int) []Sample {
	out, _ := h.RunContext(context.Background(), samples)
	return out
}

// RunContext is Run under a context: cancellation stops between probe
// series and returns the samples collected so far alongside ctx's error.
func (h *Harness) RunContext(ctx context.Context, samples int) ([]Sample, error) {
	if samples <= 0 {
		panic(fmt.Sprintf("probes: samples %d must be positive", samples))
	}
	var out []Sample
	for li, layer := range h.sys.Layers() {
		for pi, p := range h.probes {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			r := dist.Stream(h.seed, uint64(li)*1000+uint64(pi))
			path := fmt.Sprintf("%s/probe/%s.dat", layer.Mount(), p.Name)
			for s := 0; s < samples; s++ {
				dur := layer.Transfer(path, p.RW, p.Size, p.Procs, r)
				out = append(out, Sample{
					Probe:  p.Name,
					Layer:  layer.Name(),
					Index:  s,
					MBps:   float64(p.Size) / dur / 1e6,
					Second: dur,
				})
			}
		}
	}
	return out, nil
}

// Variability summarizes one (probe, layer) series the way TOKIO reports
// performance variation on production systems.
type Variability struct {
	Probe string
	Layer string
	Box   stats.Summary
	// CoV is the coefficient of variation (stddev/mean) of delivered MB/s.
	CoV float64
	// P95OverP5 is the ratio of the 95th to 5th percentile — the spread a
	// user experiences between a lucky and an unlucky run.
	P95OverP5 float64
	// FractionOfBest is the median divided by the best observed sample:
	// how far below its own demonstrated capability the system usually runs.
	FractionOfBest float64
}

// Summarize reduces a sample series to per-(probe, layer) variability rows,
// sorted by layer then probe.
func Summarize(samples []Sample) []Variability {
	type key struct{ probe, layer string }
	series := map[key][]float64{}
	for _, s := range samples {
		k := key{s.Probe, s.Layer}
		series[k] = append(series[k], s.MBps)
	}
	keys := make([]key, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].layer != keys[j].layer {
			return keys[i].layer < keys[j].layer
		}
		return keys[i].probe < keys[j].probe
	})
	out := make([]Variability, 0, len(keys))
	for _, k := range keys {
		vals := series[k]
		box := stats.Summarize(vals)
		v := Variability{Probe: k.probe, Layer: k.layer, Box: box}
		if box.N > 1 && box.Mean > 0 {
			var ss float64
			for _, x := range vals {
				d := x - box.Mean
				ss += d * d
			}
			v.CoV = math.Sqrt(ss/float64(box.N-1)) / box.Mean
		}
		if box.N > 1 {
			p5 := stats.Quantile(vals, 0.05)
			p95 := stats.Quantile(vals, 0.95)
			if p5 > 0 {
				v.P95OverP5 = p95 / p5
			}
		}
		if box.Max > 0 {
			v.FractionOfBest = box.Median / box.Max
		}
		out = append(out, v)
	}
	return out
}

// Render formats variability rows as a text table.
func Render(system string, rows []Variability) string {
	out := fmt.Sprintf("TOKIO-style probes (%s): delivered MB/s variability\n", system)
	out += fmt.Sprintf("%-14s %-12s %8s %10s %10s %8s %9s %8s\n",
		"Layer", "Probe", "N", "Median", "Max", "CoV", "p95/p5", "med/max")
	for _, v := range rows {
		out += fmt.Sprintf("%-14s %-12s %8d %10.1f %10.1f %8.2f %9.2f %8.2f\n",
			v.Layer, v.Probe, v.Box.N, v.Box.Median, v.Box.Max,
			v.CoV, v.P95OverP5, v.FractionOfBest)
	}
	return out
}
