package probes

import (
	"testing"

	"iolayers/internal/iosim"
	"iolayers/internal/iosim/gpfs"
	"iolayers/internal/iosim/nodelocal"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/units"
)

func TestDefaultProbes(t *testing.T) {
	ps := DefaultProbes()
	if len(ps) != 4 {
		t.Fatalf("got %d probes, want 4 (the TOKIO set)", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name] = true
	}
	for _, want := range []string{"bulk-write", "bulk-read", "small-write", "small-read"} {
		if !names[want] {
			t.Errorf("missing probe %q", want)
		}
	}
}

func TestRunProducesFullSeries(t *testing.T) {
	sys := systems.NewSummit()
	h := NewHarness(sys, 1)
	samples := h.Run(20)
	// 2 layers × 4 probes × 20 samples.
	if len(samples) != 2*4*20 {
		t.Fatalf("samples = %d, want 160", len(samples))
	}
	for _, s := range samples {
		if s.MBps <= 0 || s.Second <= 0 {
			t.Fatalf("invalid sample %+v", s)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	sys := systems.NewSummit()
	a := NewHarness(sys, 9).Run(10)
	b := NewHarness(systems.NewSummit(), 9).Run(10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestContendedLayerShowsVariability(t *testing.T) {
	sys := systems.NewSummit()
	rows := Summarize(NewHarness(sys, 3).Run(200))
	for _, v := range rows {
		if v.Layer != "Alpine" {
			continue
		}
		if v.FractionOfBest >= 1 {
			t.Errorf("%s/%s: median at best-case is implausible under contention", v.Layer, v.Probe)
		}
		// Bandwidth-bound probes feel the full contention spread; the
		// small probes are latency-dominated, so their delivered rate is
		// steadier — itself a TOKIO-style observation worth keeping.
		if v.Probe == "bulk-read" || v.Probe == "bulk-write" {
			if v.CoV < 0.2 {
				t.Errorf("%s/%s: CoV %.3f implausibly low under production load", v.Layer, v.Probe, v.CoV)
			}
			if v.P95OverP5 < 1.5 {
				t.Errorf("%s/%s: p95/p5 %.2f too tight", v.Layer, v.Probe, v.P95OverP5)
			}
		}
	}
}

func TestIdleSystemHasNoVariability(t *testing.T) {
	gcfg := gpfs.Alpine()
	gcfg.Variability = iosim.Variability{}
	ncfg := nodelocal.SummitSCNL()
	ncfg.Variability = iosim.Variability{}
	sys := &iosim.System{
		Name: "IdealSummit", PFS: gpfs.New(gcfg), InSystem: nodelocal.New(ncfg),
		ProcsPerNode: 42,
	}
	rows := Summarize(NewHarness(sys, 4).Run(50))
	for _, v := range rows {
		if v.CoV > 1e-9 {
			t.Errorf("%s/%s: CoV %.6f on an idle deterministic system", v.Layer, v.Probe, v.CoV)
		}
		if v.P95OverP5 < 0.999 || v.P95OverP5 > 1.001 {
			t.Errorf("%s/%s: p95/p5 %.4f, want 1", v.Layer, v.Probe, v.P95OverP5)
		}
	}
}

func TestInSystemLayerFasterAndSteadier(t *testing.T) {
	sys := systems.NewSummit()
	rows := Summarize(NewHarness(sys, 5).Run(200))
	get := func(layer, probe string) Variability {
		for _, v := range rows {
			if v.Layer == layer && v.Probe == probe {
				return v
			}
		}
		t.Fatalf("missing %s/%s", layer, probe)
		return Variability{}
	}
	// Latency-bound probes: the node-local layer's 40 µs beats the PFS's
	// 400 µs metadata path by an order of magnitude.
	pfsSmall := get("Alpine", "small-read")
	scnlSmall := get("SCNL", "small-read")
	if scnlSmall.Box.Median <= 2*pfsSmall.Box.Median {
		t.Errorf("SCNL small-read median %.0f not ≫ Alpine %.0f", scnlSmall.Box.Median, pfsSmall.Box.Median)
	}
	// Bandwidth-bound probes: the unshared node-local layer is steadier
	// even when a 128-process probe cannot out-bandwidth the center-wide
	// PFS (it only drives 4 of SCNL's 4608 nodes).
	if scnl, pfs := get("SCNL", "bulk-read"), get("Alpine", "bulk-read"); scnl.CoV >= pfs.CoV {
		t.Errorf("SCNL CoV %.3f not below Alpine %.3f (node-local is unshared)", scnl.CoV, pfs.CoV)
	}
}

func TestRenderContainsRows(t *testing.T) {
	sys := systems.NewCori()
	out := Render("Cori", Summarize(NewHarness(sys, 6).Run(10)))
	for _, want := range []string{"TOKIO", "Cori Scratch", "CBB", "bulk-write", "p95/p5"} {
		if !contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestHarnessPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("nil system", func() { NewHarness(nil, 1) })
	mustPanic("bad probe", func() {
		NewHarness(systems.NewSummit(), 1, Probe{Name: "", Size: 1, Procs: 1})
	})
	mustPanic("zero samples", func() { NewHarness(systems.NewSummit(), 1).Run(0) })
	_ = units.MiB
}
