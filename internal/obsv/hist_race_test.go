package obsv

import (
	"sync"
	"sync/atomic"
	"testing"
)

// The satellite regression: a snapshot taken while 8 goroutines hammer
// Observe must be self-consistent (count == Σ bucket counts) and
// monotonic in count across successive snapshots. The old code read the
// count atomic separately from the buckets, so a mid-Observe writer
// could make the two disagree — a torn read that broke quantile ranks.
func TestHistogramSnapshotUnderConcurrentObserve(t *testing.T) {
	r := New()
	h := r.Histogram("race.bytes")

	const (
		writers      = 8
		perWriter    = 20000
		snapshotters = 2
	)
	var stop atomic.Bool
	var wg sync.WaitGroup

	errs := make(chan string, 64)
	for s := 0; s < snapshotters; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastCount int64
			for !stop.Load() {
				snap := r.Snapshot()
				for _, hs := range snap.Histograms {
					var sum int64
					for _, b := range hs.Buckets {
						sum += int64(b.Count)
					}
					if sum != hs.Count {
						select {
						case errs <- "torn snapshot: count != Σ buckets":
						default:
						}
					}
					if hs.Count < lastCount {
						select {
						case errs <- "snapshot count went backwards":
						default:
						}
					}
					lastCount = hs.Count
				}
			}
		}()
	}

	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(int64(w*31+i) % (1 << 20))
			}
		}(w)
	}
	writersWG.Wait()
	stop.Store(true)
	wg.Wait()

	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}

	// Quiescent totals are exact.
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %d", len(snap.Histograms))
	}
	if got, want := snap.Histograms[0].Count, int64(writers*perWriter); got != want {
		t.Fatalf("final count = %d, want %d", got, want)
	}
}

func TestHistSnapQuantile(t *testing.T) {
	h := &Histogram{}
	// 90 values of 100 (bucket 7: (64,128]), 10 values of 100000
	// (bucket 17: (65536,131072]).
	for i := 0; i < 90; i++ {
		h.Observe(100)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100000)
	}
	buckets, count, sum := h.Load()
	hs := HistSnap{Count: count, Sum: sum}
	for i, n := range buckets {
		if n > 0 {
			hs.Buckets = append(hs.Buckets, BucketSnap{Index: i, Count: n})
		}
	}
	if got := hs.Quantile(0.5); got != 127 {
		t.Errorf("p50 = %d, want 127 (upper bound of the 100s bucket)", got)
	}
	if got := hs.Quantile(0.99); got != 131071 {
		t.Errorf("p99 = %d, want 131071 (upper bound of the 100000s bucket)", got)
	}
	if got := hs.Quantile(0); got != 127 {
		t.Errorf("p0 = %d, want 127 (rank clamps to the first observation)", got)
	}
	empty := HistSnap{}
	if got := empty.Quantile(0.99); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
}
