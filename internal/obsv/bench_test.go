package obsv

import "testing"

// BenchmarkObsvOverhead measures the primitive costs the hot paths pay:
// the nil fast path (metrics off — must be free and allocation-free), an
// atomic counter add, a histogram observe, and a span window. These are
// the numbers behind DESIGN.md §10's overhead budget, and `make
// benchcheck` gates allocs/op against bench_baseline.json.
func BenchmarkObsvOverhead(b *testing.B) {
	b.Run("counter-nil", func(b *testing.B) {
		b.ReportAllocs()
		var r *Registry
		c := r.Counter("off")
		for i := 0; i < b.N; i++ {
			c.Add(1)
		}
	})
	b.Run("counter", func(b *testing.B) {
		b.ReportAllocs()
		c := New().Counter("on")
		for i := 0; i < b.N; i++ {
			c.Add(1)
		}
	})
	b.Run("hist-observe", func(b *testing.B) {
		b.ReportAllocs()
		h := New().Histogram("h")
		for i := 0; i < b.N; i++ {
			h.Observe(int64(i))
		}
	})
	b.Run("hist-nil", func(b *testing.B) {
		b.ReportAllocs()
		var r *Registry
		h := r.Histogram("off")
		for i := 0; i < b.N; i++ {
			h.Observe(int64(i))
		}
	})
	b.Run("span-window", func(b *testing.B) {
		b.ReportAllocs()
		s := New().Span("stage")
		for i := 0; i < b.N; i++ {
			t := s.Begin()
			t.End()
		}
	})
	b.Run("span-nil", func(b *testing.B) {
		b.ReportAllocs()
		var r *Registry
		s := r.Span("off")
		for i := 0; i < b.N; i++ {
			t := s.Begin()
			t.End()
		}
	})
}
