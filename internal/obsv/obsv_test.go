package obsv

import (
	"bytes"
	"encoding/gob"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsOff(t *testing.T) {
	var r *Registry
	// Every lookup and every operation on the resulting nil handles must be
	// a safe no-op: nil is the disabled state.
	r.Counter("c").Add(5)
	r.Gauge("g").Set(1.5)
	r.Histogram("h").Observe(42)
	r.TimeHistogram("th").Observe(42)
	r.Histogram("h").AddBucket(3, 7)
	r.Histogram("h").AddSum(10)
	timer := r.Span("s").Begin()
	r.Span("s").AddBytes(1)
	r.Span("s").AddOps(1)
	r.Span("s").SetWorkers(4)
	timer.End()
	if got := r.Counter("c").Value(); got != 0 {
		t.Fatalf("nil counter value = %d", got)
	}
	if st := r.State(); st != nil {
		t.Fatalf("nil registry state = %+v", st)
	}
	r.RestoreState(&State{Counters: map[string]int64{"c": 1}})
	snap := r.Snapshot()
	if snap == nil || len(snap.Counters) != 0 {
		t.Fatalf("nil registry snapshot = %+v", snap)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := New()
	c := r.Counter("events")
	c.Add(3)
	c.Add(4)
	if c.Value() != 7 {
		t.Fatalf("counter = %d, want 7", c.Value())
	}
	if r.Counter("events") != c {
		t.Fatal("same name must return the same counter")
	}
	g := r.Gauge("depth")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	h := r.Histogram("bytes")
	h.Observe(0)
	h.Observe(1)
	h.Observe(2)
	h.Observe(1024)
	h.Observe(1025)
	if h.Count() != 5 {
		t.Fatalf("hist count = %d", h.Count())
	}
	if h.Sum() != 0+1+2+1024+1025 {
		t.Fatalf("hist sum = %d", h.Sum())
	}
	if h.buckets[0].Load() != 2 { // 0 and 1
		t.Fatalf("bucket 0 = %d", h.buckets[0].Load())
	}
	if h.buckets[1].Load() != 1 { // 2
		t.Fatalf("bucket 1 = %d", h.buckets[1].Load())
	}
	if h.buckets[10].Load() != 1 { // 1024 = 2^10
		t.Fatalf("bucket 10 = %d", h.buckets[10].Load())
	}
	if h.buckets[11].Load() != 1 { // 1025
		t.Fatalf("bucket 11 = %d", h.buckets[11].Load())
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3},
		{1 << 20, 20}, {1<<20 + 1, 21}, {1 << 62, 62}, {int64(^uint64(0) >> 1), 63},
	}
	for _, c := range cases {
		if got := BucketOf(c.v); got != c.want {
			t.Errorf("BucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestSpan(t *testing.T) {
	r := New()
	s := r.Span("ingest")
	timer := s.Begin()
	s.AddBytes(100)
	s.AddOps(3)
	s.SetWorkers(8)
	timer.End()
	if s.WallNanos() < 0 {
		t.Fatalf("wall = %d", s.WallNanos())
	}
	if s.Bytes() != 100 || s.Ops() != 3 {
		t.Fatalf("bytes/ops = %d/%d", s.Bytes(), s.Ops())
	}
	snap := r.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "ingest" ||
		snap.Spans[0].Workers != 8 || snap.Spans[0].MaxGoroutines < 1 {
		t.Fatalf("span snap = %+v", snap.Spans)
	}
}

func TestStateRoundTripsThroughGob(t *testing.T) {
	r := New()
	r.Counter("a").Add(10)
	r.Counter("b").Add(20)
	r.Histogram("sizes").Observe(4096)
	r.Histogram("sizes").Observe(4097)
	r.TimeHistogram("lat").Observe(1e6) // volatile: must not survive
	r.Gauge("depth").Set(3)             // volatile: must not survive
	r.Span("ingest").AddBytes(4096)
	r.Span("ingest").AddOps(2)

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r.State()); err != nil {
		t.Fatal(err)
	}
	var st State
	if err := gob.NewDecoder(&buf).Decode(&st); err != nil {
		t.Fatal(err)
	}

	r2 := New()
	r2.Counter("a").Add(999) // restore must overwrite
	r2.RestoreState(&st)
	if got := r2.Counter("a").Value(); got != 10 {
		t.Fatalf("restored a = %d, want 10", got)
	}
	if got := r2.Counter("b").Value(); got != 20 {
		t.Fatalf("restored b = %d, want 20", got)
	}
	h := r2.Histogram("sizes")
	if h.Count() != 2 || h.Sum() != 8193 {
		t.Fatalf("restored hist count/sum = %d/%d", h.Count(), h.Sum())
	}
	if h.buckets[12].Load() != 1 || h.buckets[13].Load() != 1 {
		t.Fatalf("restored buckets wrong: 12=%d 13=%d", h.buckets[12].Load(), h.buckets[13].Load())
	}
	if sp := r2.Span("ingest"); sp.Bytes() != 4096 || sp.Ops() != 2 {
		t.Fatalf("restored span bytes/ops = %d/%d", sp.Bytes(), sp.Ops())
	}
	snap := r2.Snapshot()
	for _, hs := range snap.Histograms {
		if hs.Name == "lat" {
			t.Fatal("volatile histogram leaked through State")
		}
	}
	if len(snap.Gauges) != 0 {
		t.Fatal("gauge leaked through State")
	}
}

func TestStripVolatile(t *testing.T) {
	r := New()
	r.Counter("kept").Add(1)
	r.Gauge("dropped").Set(1)
	r.Histogram("kept_hist").Observe(8)
	r.TimeHistogram("dropped_hist").Observe(8)
	sp := r.Span("stage")
	timer := sp.Begin()
	sp.AddBytes(64)
	sp.AddOps(2)
	sp.SetWorkers(16)
	timer.End()

	s := r.Snapshot().StripVolatile()
	if len(s.Gauges) != 0 {
		t.Fatalf("gauges survived strip: %+v", s.Gauges)
	}
	if len(s.Histograms) != 1 || s.Histograms[0].Name != "kept_hist" {
		t.Fatalf("histograms after strip: %+v", s.Histograms)
	}
	if len(s.Spans) != 1 {
		t.Fatalf("spans after strip: %+v", s.Spans)
	}
	sp0 := s.Spans[0]
	if sp0.WallNanos != 0 || sp0.Workers != 0 || sp0.MaxGoroutines != 0 || sp0.Active != 0 {
		t.Fatalf("volatile span fields survived: %+v", sp0)
	}
	if sp0.Bytes != 64 || sp0.Ops != 2 {
		t.Fatalf("deterministic span fields lost: %+v", sp0)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := New()
	r.Counter("z").Add(1)
	r.Counter("a").Add(1)
	r.Counter("m").Add(1)
	s := r.Snapshot()
	if s.Counters[0].Name != "a" || s.Counters[1].Name != "m" || s.Counters[2].Name != "z" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	j1 := string(r.Snapshot().JSON())
	j2 := string(r.Snapshot().JSON())
	if j1 != j2 {
		t.Fatal("snapshot JSON not stable across calls")
	}
}

func TestConcurrentUse(t *testing.T) {
	r := New()
	c := r.Counter("n")
	h := r.Histogram("h")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			timer := r.Span("stage").Begin()
			for i := 0; i < 1000; i++ {
				c.Add(1)
				h.Observe(int64(i))
			}
			timer.End()
		}()
	}
	// Snapshot concurrently with the writers (the HTTP handler does this).
	for i := 0; i < 10; i++ {
		_ = r.Snapshot().JSON()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("counter/hist = %d/%d, want 8000/8000", c.Value(), h.Count())
	}
}

func TestText(t *testing.T) {
	r := New()
	r.Counter("ingest.logs_parsed").Add(1234)
	sp := r.Span("ingest")
	timer := sp.Begin()
	sp.AddOps(1234)
	sp.AddBytes(5 << 20)
	timer.End()
	txt := r.Snapshot().Text()
	for _, want := range []string{"ingest.logs_parsed", "stage", "ingest", "5.00 MiB"} {
		if !strings.Contains(txt, want) {
			t.Errorf("text missing %q:\n%s", want, txt)
		}
	}
}
