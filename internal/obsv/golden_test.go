package obsv

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// TestSnapshotGolden pins the exact JSON a snapshot renders — the schema
// contract behind `iostudy -metrics out.json`. A diff here means the
// snapshot layout changed: bump SchemaVersion and regenerate with
// `go test ./internal/obsv -run Golden -update-golden`.
func TestSnapshotGolden(t *testing.T) {
	r := New()
	r.Counter("ingest.logs_parsed").Add(1234)
	r.Counter("ingest.decode_errors.truncated").Add(2)
	r.Gauge("logfmt.pool.buf.hit_rate").Set(0.96875)
	h := r.Histogram("ingest.entry_bytes")
	h.Observe(4096)
	h.Observe(4096)
	h.Observe(70000)
	r.TimeHistogram("ingest.entry_nanos").Observe(1500000)
	sp := r.Span("ingest")
	sp.AddBytes(78192)
	sp.AddOps(3)
	sp.SetWorkers(4)

	snap := r.Snapshot()
	// Zero the wall-clock-dependent span fields so the golden bytes are
	// reproducible; the strip contract is tested separately.
	for i := range snap.Spans {
		snap.Spans[i].WallNanos = 0
		snap.Spans[i].MaxGoroutines = 0
	}
	got := snap.JSON()

	path := filepath.Join("testdata", "snapshot.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update-golden): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("snapshot JSON drifted from golden — schema change?\ngot:\n%s\nwant:\n%s", got, want)
	}
}
