package obsv

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestServe(t *testing.T) {
	r := New()
	r.Counter("ingest.logs_parsed").Add(7)
	addr, shutdown, err := Serve("obsvtest", "127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	base := "http://" + addr

	// pprof index and a cheap profile endpoint.
	if code, body := get(t, base+"/debug/pprof/"); code != 200 || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index: code %d", code)
	}
	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("pprof cmdline: code %d", code)
	}

	// expvar carries the published registry.
	code, body := get(t, base+"/debug/vars")
	if code != 200 {
		t.Fatalf("expvar: code %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("expvar not JSON: %v", err)
	}
	raw, ok := vars["obsvtest"]
	if !ok {
		t.Fatalf("expvar missing published registry; keys: %v", keysOf(vars))
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("published registry not a snapshot: %v", err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 7 {
		t.Fatalf("expvar snapshot = %+v", snap.Counters)
	}

	// Text and JSON metrics endpoints.
	if code, body := get(t, base+"/metrics"); code != 200 || !strings.Contains(string(body), "ingest.logs_parsed") {
		t.Fatalf("/metrics: code %d body %q", code, body)
	}
	code, body = get(t, base+"/metrics.json")
	if code != 200 {
		t.Fatalf("/metrics.json: code %d", code)
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics.json not a snapshot: %v", err)
	}
	if snap.Schema != SchemaVersion {
		t.Fatalf("schema = %d, want %d", snap.Schema, SchemaVersion)
	}
}

func TestServeRepublishSameName(t *testing.T) {
	// A restarted debug server re-publishes its expvar name; the second
	// publish must re-target, not panic.
	r1 := New()
	r1.Counter("x").Add(1)
	addr1, shutdown1, err := Serve("obsvtest-repub", "127.0.0.1:0", r1)
	if err != nil {
		t.Fatal(err)
	}
	shutdown1()
	_ = addr1

	r2 := New()
	r2.Counter("x").Add(2)
	addr2, shutdown2, err := Serve("obsvtest-repub", "127.0.0.1:0", r2)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown2()
	_, body := get(t, "http://"+addr2+"/debug/vars")
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(vars["obsvtest-repub"], &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 2 {
		t.Fatalf("expvar still targets old registry: %+v", snap.Counters)
	}
}

func keysOf(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
