package obsv

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// hdrSubBits sets the HDR histogram's resolution: every power-of-two
// range is split into 2^hdrSubBits linear sub-buckets, bounding the
// relative error of any reported quantile to 1/2^hdrSubBits ≈ 3.1%.
// That is the precision an SLO gate needs — "p99 grew from 80ms to 2s"
// must be distinguishable from noise, while the log2 Histogram can only
// say "somewhere between 1s and 2s".
const hdrSubBits = 5

// hdrSub is the sub-bucket count per power-of-two range.
const hdrSub = 1 << hdrSubBits

// hdrBuckets sizes the counter array: the linear region [0, 2*hdrSub)
// plus one hdrSub-wide group per remaining power of two up to 2^63-1.
// (Largest index: value 2^63-1 has bit length 63, shift 63-hdrSubBits-1,
// so index (63-hdrSubBits-1)*hdrSub + 2*hdrSub - 1.)
const hdrBuckets = (63-hdrSubBits)*hdrSub + 2*hdrSub

// HDR is a high-dynamic-range histogram: fixed memory (16 KiB of
// counters), lock-free concurrent Observe, and quantile extraction with
// bounded ~3% relative error across the full non-negative int64 range —
// the shape the loadtest harness records latency distributions in, after
// Gil Tene's HdrHistogram. Values below zero clamp to zero. The zero
// value is ready to use; a nil *HDR no-ops like every other obsv type.
type HDR struct {
	counts [hdrBuckets]atomic.Uint64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// hdrIndex maps a value to its sub-bucket. Values in [0, 2*hdrSub) map
// linearly (exact); a value with bit length m > hdrSubBits+1 keeps its
// top hdrSubBits+1 bits: index = (m-hdrSubBits-1)*hdrSub + (v >> (m-hdrSubBits-1)).
// The mapping is continuous and monotone.
func hdrIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	m := bits.Len64(uint64(v))
	if m <= hdrSubBits+1 {
		return int(v)
	}
	shift := uint(m - hdrSubBits - 1)
	return int(uint64(m-hdrSubBits-1)*hdrSub + uint64(v)>>shift)
}

// hdrValue returns the largest value that maps to index i — the upper
// bound reported for any quantile landing in that sub-bucket.
func hdrValue(i int) int64 {
	if i < 2*hdrSub {
		return int64(i)
	}
	shift := uint(i/hdrSub - 1)
	top := uint64(i - int(shift)*hdrSub)
	v := (top+1)<<shift - 1
	if v > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(v)
}

// Observe adds one value. Safe for concurrent use and on a nil receiver.
func (h *HDR) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[hdrIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations; 0 on a nil receiver.
func (h *HDR) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the observation sum; 0 on a nil receiver.
func (h *HDR) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest observed value; 0 on a nil receiver or an
// empty histogram.
func (h *HDR) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Mean returns the observation mean; 0 when empty.
func (h *HDR) Mean() float64 {
	if h == nil {
		return 0
	}
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(c)
}

// Merge folds other's observations into h — the per-worker fold for
// harnesses that keep one HDR per client goroutine. The max is merged
// exactly; safe when either side is nil.
func (h *HDR) Merge(other *HDR) {
	if h == nil || other == nil {
		return
	}
	for i := range other.counts {
		if n := other.counts[i].Load(); n > 0 {
			h.counts[i].Add(n)
			h.count.Add(int64(n))
		}
	}
	h.sum.Add(other.sum.Load())
	for {
		ov, cur := other.max.Load(), h.max.Load()
		if ov <= cur || h.max.CompareAndSwap(cur, ov) {
			break
		}
	}
}

// Quantile returns an upper bound on the q-th quantile, within
// 1/2^hdrSubBits relative error. Like Histogram.Load, the count is
// derived from one pass over the buckets so a concurrent snapshot is
// self-consistent; q clamps to [0, 1] and an empty histogram reports 0.
func (h *HDR) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	var local [hdrBuckets]uint64
	var total int64
	for i := range h.counts {
		n := h.counts[i].Load()
		local[i] = n
		total += int64(n)
	}
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range local {
		cum += int64(n)
		if cum >= rank {
			return hdrValue(i)
		}
	}
	return h.Max()
}

// HDRQuantiles is the standard latency digest the loadtest reports: the
// three SLO-gated quantiles plus the observed extremes.
type HDRQuantiles struct {
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	Count int64   `json:"count"`
}

// Quantiles extracts the standard digest in one pass per quantile.
func (h *HDR) Quantiles() HDRQuantiles {
	if h == nil {
		return HDRQuantiles{}
	}
	return HDRQuantiles{
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Max(),
		Mean:  h.Mean(),
		Count: h.Count(),
	}
}
