package obsv

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Span tracks one named pipeline stage: accumulated wall time across
// (possibly repeated) Begin/End windows, bytes and ops attributed to the
// stage, the worker count the stage ran with, and the peak goroutine count
// observed while it was active. Wall time, goroutines, and workers are
// volatile (scheduling- and configuration-dependent); bytes and ops are
// deterministic event sums.
type Span struct {
	name string
	// wallNanos accumulates completed Begin→End windows.
	wallNanos atomic.Int64
	// active counts open Begin windows (a stage may be re-entered).
	active atomic.Int64
	bytes  atomic.Int64
	ops    atomic.Int64
	// workers records the pool size the stage ran with (Set semantics).
	workers atomic.Int64
	// maxGoroutines is the peak runtime.NumGoroutine observed at
	// Begin/End edges while the span was active.
	maxGoroutines atomic.Int64
}

// Name returns the span's stage name; "" on a nil receiver.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Timer is an open stage window. The zero Timer (from a nil span) is valid
// and its End is a no-op, so callers never branch.
type Timer struct {
	s  *Span
	t0 int64
}

// Begin opens a stage window and returns its Timer. Safe on a nil receiver.
func (s *Span) Begin() Timer {
	if s == nil {
		return Timer{}
	}
	s.active.Add(1)
	s.observeGoroutines()
	return Timer{s: s, t0: time.Now().UnixNano()}
}

// End closes the window, folding its wall time into the span.
func (t Timer) End() {
	if t.s == nil {
		return
	}
	t.s.wallNanos.Add(time.Now().UnixNano() - t.t0)
	t.s.active.Add(-1)
	t.s.observeGoroutines()
}

func (s *Span) observeGoroutines() {
	n := int64(runtime.NumGoroutine())
	for {
		cur := s.maxGoroutines.Load()
		if n <= cur || s.maxGoroutines.CompareAndSwap(cur, n) {
			return
		}
	}
}

// AddBytes attributes transferred/processed bytes to the stage. Safe on a
// nil receiver.
func (s *Span) AddBytes(n int64) {
	if s == nil {
		return
	}
	s.bytes.Add(n)
}

// AddOps attributes completed operations (jobs, logs, entries) to the
// stage. Safe on a nil receiver.
func (s *Span) AddOps(n int64) {
	if s == nil {
		return
	}
	s.ops.Add(n)
}

// SetWorkers records the stage's worker-pool size. Safe on a nil receiver.
func (s *Span) SetWorkers(n int) {
	if s == nil {
		return
	}
	s.workers.Store(int64(n))
}

// WallNanos returns the accumulated closed-window wall time.
func (s *Span) WallNanos() int64 {
	if s == nil {
		return 0
	}
	return s.wallNanos.Load()
}

// Bytes returns the bytes attributed to the stage.
func (s *Span) Bytes() int64 {
	if s == nil {
		return 0
	}
	return s.bytes.Load()
}

// Ops returns the ops attributed to the stage.
func (s *Span) Ops() int64 {
	if s == nil {
		return 0
	}
	return s.ops.Load()
}
