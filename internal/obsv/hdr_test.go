package obsv

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"
)

// Every non-negative value must map to an in-range index whose
// representative upper bound is ≥ the value and within the promised
// relative error.
func TestHDRIndexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	check := func(v int64) {
		t.Helper()
		i := hdrIndex(v)
		if i < 0 || i >= hdrBuckets {
			t.Fatalf("hdrIndex(%d) = %d out of [0, %d)", v, i, hdrBuckets)
		}
		up := hdrValue(i)
		if up < v {
			t.Fatalf("hdrValue(hdrIndex(%d)) = %d < value", v, up)
		}
		if v > 2*hdrSub && float64(up-v) > float64(v)/hdrSub {
			t.Fatalf("value %d: bound %d overshoots by more than 1/%d", v, up, hdrSub)
		}
		if i > 0 && hdrValue(i-1) >= v {
			t.Fatalf("value %d also fits bucket %d — mapping not tight", v, i-1)
		}
	}
	for _, v := range []int64{0, 1, 2, hdrSub - 1, hdrSub, 2*hdrSub - 1, 2 * hdrSub,
		1000, 1 << 20, math.MaxInt64 - 1, math.MaxInt64} {
		check(v)
	}
	for i := 0; i < 100000; i++ {
		check(int64(rng.Uint64() >> uint(1+i%40)))
	}
	if got := hdrIndex(-5); got != 0 {
		t.Errorf("negative values must clamp to bucket 0, got %d", got)
	}
}

func TestHDRQuantileAccuracy(t *testing.T) {
	h := &HDR{}
	// Uniform 1..100000: exact quantiles are q*100000.
	rng := rand.New(rand.NewPCG(7, 9))
	const n = 200000
	for i := 0; i < n; i++ {
		h.Observe(1 + rng.Int64N(100000))
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := float64(h.Quantile(q))
		want := q * 100000
		if got < want*0.98 || got > want*1.05 {
			t.Errorf("q%.3f = %.0f, want within [0.98, 1.05] of %.0f", q, got, want)
		}
	}
	if h.Count() != n {
		t.Errorf("count = %d", h.Count())
	}
	if h.Max() > 100000 || h.Max() < 99000 {
		t.Errorf("max = %d", h.Max())
	}
	if m := h.Mean(); m < 49000 || m > 51000 {
		t.Errorf("mean = %.0f", m)
	}
}

func TestHDRMergeAndNil(t *testing.T) {
	a, b := &HDR{}, &HDR{}
	for i := int64(1); i <= 1000; i++ {
		a.Observe(i)
	}
	for i := int64(100001); i <= 101000; i++ {
		b.Observe(i)
	}
	a.Merge(b)
	if a.Count() != 2000 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if got := a.Quantile(0.25); got > 600 {
		t.Errorf("merged p25 = %d, want low range", got)
	}
	if got := a.Quantile(0.75); got < 100000 {
		t.Errorf("merged p75 = %d, want high range", got)
	}
	if a.Max() < 101000 {
		t.Errorf("merged max = %d", a.Max())
	}

	var nh *HDR
	nh.Observe(5)
	nh.Merge(a)
	a.Merge(nil)
	if nh.Count() != 0 || nh.Quantile(0.5) != 0 || nh.Max() != 0 {
		t.Error("nil HDR must no-op")
	}
	empty := &HDR{}
	if empty.Quantile(0.99) != 0 || empty.Mean() != 0 {
		t.Error("empty HDR quantile/mean must be 0")
	}
}

// Concurrent Observe + Quantile must be self-consistent (never panic,
// never report a quantile above a concurrent max-bound) — run under
// -race this is the harness's hot-path contract.
func TestHDRConcurrent(t *testing.T) {
	h := &HDR{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				h.Observe(int64(i%5000 + w))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			q := h.Quantile(0.99)
			if q < 0 || q > hdrValue(hdrIndex(5008)) {
				t.Errorf("concurrent p99 = %d out of range", q)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	// Quantiles are bucket upper bounds, so P999 may exceed the exact Max
	// by up to one sub-bucket width; order holds among the quantiles.
	q := h.Quantiles()
	if q.Count != 160000 || q.P50 <= 0 || q.P999 < q.P50 || q.Max < 5000 {
		t.Errorf("final digest inconsistent: %+v", q)
	}
}
