package obsv

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// SchemaVersion identifies the snapshot JSON layout. Bump only on
// incompatible changes; the golden test pins the rendered form.
const SchemaVersion = 1

// CounterSnap is one counter in a snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnap is one gauge in a snapshot.
type GaugeSnap struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// BucketSnap is one non-empty histogram bucket: values in
// [2^(index-1), 2^index) (index 0: ≤ 1).
type BucketSnap struct {
	Index int    `json:"index"`
	Count uint64 `json:"count"`
}

// HistSnap is one histogram in a snapshot.
type HistSnap struct {
	Name     string       `json:"name"`
	Volatile bool         `json:"volatile"`
	Count    int64        `json:"count"`
	Sum      int64        `json:"sum"`
	Buckets  []BucketSnap `json:"buckets"`
}

// SpanSnap is one pipeline-stage span in a snapshot. WallNanos, Active,
// Workers, and MaxGoroutines are volatile; Bytes and Ops are deterministic.
type SpanSnap struct {
	Name          string `json:"name"`
	WallNanos     int64  `json:"wall_nanos"`
	Active        int64  `json:"active"`
	Bytes         int64  `json:"bytes"`
	Ops           int64  `json:"ops"`
	Workers       int64  `json:"workers"`
	MaxGoroutines int64  `json:"max_goroutines"`
}

// Quantile returns an upper bound on the q-th quantile of the histogram:
// the largest value the bucket holding the q-th observation can contain
// (bucket i spans [2^(i-1), 2^i), so the bound is 2^i - 1; bucket 0 is 1).
// q is clamped to [0, 1]; a histogram with no observations reports 0.
// The log2 buckets make this a coarse decade-grade bound — use the HDR
// histogram when quantiles need percent-level resolution.
func (h *HistSnap) Quantile(q float64) int64 {
	if h.Count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range h.Buckets {
		cum += int64(b.Count)
		if cum >= rank {
			if b.Index == 0 {
				return 1
			}
			if b.Index >= 63 {
				return math.MaxInt64
			}
			return int64(1)<<uint(b.Index) - 1
		}
	}
	// Unreachable when Count == Σ buckets, which Snapshot guarantees.
	return math.MaxInt64
}

// Snapshot is a point-in-time copy of a registry, with every slice sorted
// by name so the rendered JSON is stable. The schema is a compatibility
// contract: tools parse `iostudy -metrics` output.
type Snapshot struct {
	Schema     int           `json:"schema"`
	Counters   []CounterSnap `json:"counters"`
	Gauges     []GaugeSnap   `json:"gauges"`
	Histograms []HistSnap    `json:"histograms"`
	Spans      []SpanSnap    `json:"spans"`
}

// Snapshot copies the registry's current values. Returns an empty snapshot
// (not nil) on a nil registry, so callers can render unconditionally.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{
		Schema:     SchemaVersion,
		Counters:   []CounterSnap{},
		Gauges:     []GaugeSnap{},
		Histograms: []HistSnap{},
		Spans:      []SpanSnap{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		snap.Counters = append(snap.Counters, CounterSnap{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		snap.Gauges = append(snap.Gauges, GaugeSnap{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		// One consistent bucket copy per histogram: the count is derived
		// from the copied buckets (not the count atomic) so concurrent
		// Observes can never produce a snapshot where count ≠ Σ buckets.
		buckets, count, sum := h.Load()
		hs := HistSnap{Name: name, Volatile: h.volatile,
			Count: count, Sum: sum, Buckets: []BucketSnap{}}
		for i := 0; i < NumBuckets; i++ {
			if n := buckets[i]; n > 0 {
				hs.Buckets = append(hs.Buckets, BucketSnap{Index: i, Count: n})
			}
		}
		snap.Histograms = append(snap.Histograms, hs)
	}
	for name, s := range r.spans {
		snap.Spans = append(snap.Spans, SpanSnap{
			Name:          name,
			WallNanos:     s.wallNanos.Load(),
			Active:        s.active.Load(),
			Bytes:         s.bytes.Load(),
			Ops:           s.ops.Load(),
			Workers:       s.workers.Load(),
			MaxGoroutines: s.maxGoroutines.Load(),
		})
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	sort.Slice(snap.Spans, func(i, j int) bool { return snap.Spans[i].Name < snap.Spans[j].Name })
	return snap
}

// StripVolatile returns a copy with every scheduling-, wall-clock-, or
// configuration-dependent field removed: gauges and volatile histograms are
// dropped, and spans keep only their deterministic bytes/ops. What remains
// is byte-identical across worker counts and across checkpoint/resume.
func (s *Snapshot) StripVolatile() *Snapshot {
	out := &Snapshot{
		Schema:     s.Schema,
		Counters:   append([]CounterSnap{}, s.Counters...),
		Gauges:     []GaugeSnap{},
		Histograms: []HistSnap{},
		Spans:      []SpanSnap{},
	}
	for _, h := range s.Histograms {
		if h.Volatile {
			continue
		}
		h.Buckets = append([]BucketSnap{}, h.Buckets...)
		out.Histograms = append(out.Histograms, h)
	}
	for _, sp := range s.Spans {
		out.Spans = append(out.Spans, SpanSnap{Name: sp.Name, Bytes: sp.Bytes, Ops: sp.Ops})
	}
	return out
}

// JSON renders the snapshot as indented JSON with a trailing newline — the
// exact bytes `iostudy -metrics out.json` writes.
func (s *Snapshot) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// A Snapshot is plain data; marshaling cannot fail.
		panic(fmt.Sprintf("obsv: marshaling snapshot: %v", err))
	}
	return append(b, '\n')
}

// Text renders a human-readable summary: spans with derived rates first,
// then counters, gauges, and histogram totals.
func (s *Snapshot) Text() string {
	var b strings.Builder
	if len(s.Spans) > 0 {
		fmt.Fprintf(&b, "%-12s %12s %14s %14s %10s %8s %6s\n",
			"stage", "wall", "ops", "bytes", "ops/s", "workers", "gor")
		for _, sp := range s.Spans {
			wall := float64(sp.WallNanos) / 1e9
			rate := "-"
			if wall > 0 && sp.Ops > 0 {
				rate = humanF(float64(sp.Ops) / wall)
			}
			fmt.Fprintf(&b, "%-12s %12s %14s %14s %10s %8d %6d\n",
				sp.Name, fmt.Sprintf("%.3fs", wall),
				humanI(sp.Ops), humanBytes(sp.Bytes), rate,
				sp.Workers, sp.MaxGoroutines)
		}
	}
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "%-44s %14s\n", c.Name, humanI(c.Value))
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(&b, "%-44s %14s\n", g.Name, humanF(g.Value))
	}
	for _, h := range s.Histograms {
		mean := "-"
		if h.Count > 0 {
			mean = humanF(float64(h.Sum) / float64(h.Count))
		}
		fmt.Fprintf(&b, "%-44s %14s  (mean %s)\n",
			h.Name+" [hist]", humanI(h.Count), mean)
	}
	return b.String()
}

func humanI(v int64) string { return humanF(float64(v)) }

func humanF(v float64) string {
	abs := v
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= 1e12:
		return fmt.Sprintf("%.1fT", v/1e12)
	case abs >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case abs >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case abs >= 1e4:
		return fmt.Sprintf("%.1fK", v/1e3)
	case abs == 0:
		return "0"
	case abs < 0.01:
		return fmt.Sprintf("%.2g", v)
	}
	return fmt.Sprintf("%.4g", v)
}

func humanBytes(v int64) string {
	f := float64(v)
	switch {
	case f >= 1<<40:
		return fmt.Sprintf("%.2f TiB", f/(1<<40))
	case f >= 1<<30:
		return fmt.Sprintf("%.2f GiB", f/(1<<30))
	case f >= 1<<20:
		return fmt.Sprintf("%.2f MiB", f/(1<<20))
	case f >= 1<<10:
		return fmt.Sprintf("%.2f KiB", f/(1<<10))
	}
	return fmt.Sprintf("%d B", v)
}
