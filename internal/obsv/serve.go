package obsv

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// expvarOnce guards expvar.Publish, which panics on duplicate names: tests
// (and a binary that restarts its debug server) re-publish the same name.
var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]*Registry{}
)

// publishExpvar exposes the registry's snapshot as the named expvar, so it
// appears under /debug/vars alongside memstats and cmdline. Re-publishing a
// name re-targets the existing var at the new registry.
func publishExpvar(name string, r *Registry) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if _, ok := expvarPublished[name]; !ok {
		n := name
		expvar.Publish(n, expvar.Func(func() any {
			expvarMu.Lock()
			reg := expvarPublished[n]
			expvarMu.Unlock()
			return reg.Snapshot()
		}))
	}
	expvarPublished[name] = r
}

// Serve starts the opt-in debug HTTP server behind every binary's
// -debug-addr flag: net/http/pprof under /debug/pprof/, expvar under
// /debug/vars (with the registry published as the named var), the
// snapshot as text under /metrics and as JSON under /metrics.json.
//
// It returns the bound address (useful with ":0") and a shutdown func.
// The server runs until shutdown; a nil registry serves pprof/expvar only,
// with empty metrics endpoints.
func Serve(name, addr string, r *Registry) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obsv: listening on %s: %w", addr, err)
	}
	publishExpvar(name, r)

	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, r.Snapshot().Text())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(r.Snapshot().JSON())
	})

	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Serve returns ErrServerClosed on shutdown; anything else means the
		// debug server died, which must not take the study down with it.
		_ = srv.Serve(ln)
	}()
	shutdown := func() {
		_ = srv.Close()
		<-done
	}
	return ln.Addr().String(), shutdown, nil
}
