package obsv

import (
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the fixed bucket count of every histogram: bucket 0 holds
// values ≤ 0 (and 1), bucket i holds values in [2^(i-1), 2^i). 64 buckets
// cover the full int64 range, so byte sizes and nanosecond latencies share
// one shape — the same log2 binning the paper's size-class tables use
// (Darshan's access-size bins are log10-ish; log2 refines them without
// losing the "which decade" readability).
const NumBuckets = 64

// Histogram is a fixed-bucket log2 histogram with atomic buckets. Observe
// is safe for concurrent use; for hot loops, tally into a plain
// [NumBuckets]uint64 per worker and fold with AddBucket at batch
// boundaries.
type Histogram struct {
	volatile bool
	buckets  [NumBuckets]atomic.Uint64
	count    atomic.Int64
	sum      atomic.Int64
}

// BucketOf returns the bucket index for a value: 0 for v ≤ 1, otherwise
// bits.Len64(v-1) clamped to NumBuckets-1. Exact powers of two land in the
// bucket they open: BucketOf(2^k) == k.
func BucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v - 1))
	if b >= NumBuckets {
		return NumBuckets - 1
	}
	return b
}

// Observe adds one value. Safe on a nil receiver (no-op).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[BucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// AddBucket folds n pre-binned observations into bucket i — the batch-merge
// path for per-worker tallies. The sum is approximated by the bucket's
// lower bound times n; callers that need the exact sum should AddSum
// alongside. Safe on a nil receiver.
func (h *Histogram) AddBucket(i int, n uint64) {
	if h == nil || n == 0 {
		return
	}
	if i < 0 {
		i = 0
	}
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	h.buckets[i].Add(n)
	h.count.Add(int64(n))
}

// AddSum folds an exact value sum accumulated out-of-band (see AddBucket).
// Safe on a nil receiver.
func (h *Histogram) AddSum(v int64) {
	if h == nil {
		return
	}
	h.sum.Add(v)
}

// Count returns the number of observations; 0 on a nil receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the observation sum; 0 on a nil receiver.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Load copies the buckets once and derives the observation count from
// that copy, so the pair is self-consistent even while writers are mid-
// Observe. Reading the count atomic separately can tear: an Observe that
// has incremented its bucket but not yet the counter (or vice versa)
// makes count ≠ Σ buckets for the duration of the race. Deriving the
// count from the copied buckets restores the invariant, and because each
// bucket is monotone, successive Loads are monotone in count — the
// property quantile extraction and the SLO gate depend on. The sum is
// read after the buckets and clamps to observations actually counted
// only in spirit (it may include a few values whose bucket increments
// were not yet visible); it feeds means, never quantiles. Safe on a nil
// receiver (zero values).
func (h *Histogram) Load() (buckets [NumBuckets]uint64, count int64, sum int64) {
	if h == nil {
		return
	}
	for i := 0; i < NumBuckets; i++ {
		n := h.buckets[i].Load()
		buckets[i] = n
		count += int64(n)
	}
	return buckets, count, h.sum.Load()
}

// sparse flattens the non-zero buckets as [i0, n0, i1, n1, ...], with the
// count and sum appended as two trailing pairs keyed past NumBuckets.
func (h *Histogram) sparse() []uint64 {
	var out []uint64
	for i := 0; i < NumBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			out = append(out, uint64(i), n)
		}
	}
	out = append(out, NumBuckets, uint64(h.count.Load()))
	out = append(out, NumBuckets+1, uint64(h.sum.Load()))
	return out
}

// restoreSparse overwrites the histogram from a sparse() encoding.
func (h *Histogram) restoreSparse(pairs []uint64) {
	if h == nil {
		return
	}
	for i := 0; i < NumBuckets; i++ {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	for k := 0; k+1 < len(pairs); k += 2 {
		i, n := pairs[k], pairs[k+1]
		switch {
		case i < NumBuckets:
			h.buckets[i].Store(n)
		case i == NumBuckets:
			h.count.Store(int64(n))
		case i == NumBuckets+1:
			h.sum.Store(int64(n))
		}
	}
}
