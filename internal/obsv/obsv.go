// Package obsv is the pipeline's self-instrumentation layer: allocation-lean
// metrics and stage tracing for the generate → simulate → encode → ingest →
// analyze → render pipeline, in the spirit of the instrument the paper's
// study itself rests on (Darshan is exactly an always-on, low-overhead
// observability layer; this package gives the reproduction the same
// property).
//
// Design constraints (DESIGN.md §10):
//
//   - Zero dependencies beyond the standard library.
//   - Nil is off: every method on a nil *Registry, *Counter, *Gauge,
//     *Histogram, or *Span is a no-op, so instrumented code paths carry a
//     single pointer nil-check and zero allocations when metrics are
//     disabled.
//   - No contention on hot paths: parallel workers keep plain per-worker
//     tallies and fold them into the registry at batch boundaries — the
//     same shard-and-merge model the analysis Aggregator uses — so enabling
//     metrics never adds a lock or a contended cache line to a worker loop.
//     The registry's own values are atomics, safe for a concurrent HTTP
//     snapshot while a campaign runs.
//   - Deterministic metrics are separable from volatile ones: counters and
//     non-volatile histograms are exact event counts that survive
//     checkpoint/resume (State/RestoreState) and are byte-identical across
//     worker counts; gauges, volatile histograms, and span timings are
//     point-in-time observations that Snapshot.StripVolatile removes.
package obsv

import (
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. Counters are the
// deterministic backbone of the registry: they are exact sums, merge across
// workers by addition, and round-trip through State bit-exactly.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter. Safe on a nil receiver (no-op).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count; 0 on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// store overwrites the count (State restore only).
func (c *Counter) store(n int64) { c.v.Store(n) }

// Gauge is a point-in-time observation (queue depth, pool hit rate, busy
// seconds). Gauges hold a float64 and are volatile by definition: they do
// not survive checkpoints and StripVolatile removes them.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the observation. Safe on a nil receiver (no-op).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last observation; 0 on a nil receiver.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry is a named collection of metrics and spans. The zero value is not
// usable; construct with New. A nil *Registry is the disabled state: every
// lookup returns nil, and nil metric handles no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    map[string]*Span
}

// New builds an empty registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		spans:    map[string]*Span{},
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// on a nil registry. Resolve handles once at setup, not inside hot loops —
// the lookup takes the registry lock.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named deterministic histogram (log2 buckets),
// creating it on first use. Use for exact event distributions — byte sizes,
// op counts — that must be identical across worker counts. Returns nil on a
// nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	return r.histogram(name, false)
}

// TimeHistogram returns the named volatile histogram, for wall-clock
// latencies and anything else scheduling-dependent. StripVolatile removes
// it from snapshots. Returns nil on a nil registry.
func (r *Registry) TimeHistogram(name string) *Histogram {
	return r.histogram(name, true)
}

func (r *Registry) histogram(name string, volatile bool) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{volatile: volatile}
		r.hists[name] = h
	}
	return h
}

// Span returns the named pipeline-stage span, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Span(name string) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.spans[name]
	if !ok {
		s = &Span{name: name}
		r.spans[name] = s
	}
	return s
}

// State is the deterministic slice of a registry — counters and
// non-volatile histograms — in a gob-friendly shape, so checkpoints can
// persist metrics alongside AggregatorState and a resumed run's final
// snapshot is byte-identical to an uninterrupted one.
type State struct {
	Counters map[string]int64
	// Hists maps name → non-zero (bucket, count) pairs, flattened as
	// [i0, n0, i1, n1, ...].
	Hists map[string][]uint64
	// Spans maps name → {bytes, ops}, the two deterministic span fields
	// (timings and goroutine counts are volatile and start over on resume).
	Spans map[string][2]int64
}

// State captures the deterministic metrics. Returns nil on a nil registry.
func (r *Registry) State() *State {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st := &State{Counters: map[string]int64{}, Hists: map[string][]uint64{}, Spans: map[string][2]int64{}}
	for name, c := range r.counters {
		st.Counters[name] = c.Value()
	}
	for name, h := range r.hists {
		if h.volatile {
			continue
		}
		st.Hists[name] = h.sparse()
	}
	for name, s := range r.spans {
		st.Spans[name] = [2]int64{s.bytes.Load(), s.ops.Load()}
	}
	return st
}

// RestoreState overwrites the registry's deterministic metrics with a prior
// State (checkpoint resume). A nil receiver or nil state is a no-op.
func (r *Registry) RestoreState(st *State) {
	if r == nil || st == nil {
		return
	}
	for name, v := range st.Counters {
		r.Counter(name).store(v)
	}
	for name, pairs := range st.Hists {
		r.Histogram(name).restoreSparse(pairs)
	}
	for name, v := range st.Spans {
		s := r.Span(name)
		s.bytes.Store(v[0])
		s.ops.Store(v[1])
	}
}
