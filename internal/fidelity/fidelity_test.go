package fidelity

import (
	"strings"
	"testing"
)

// TestTableWellFormed guards the check table itself: enough coverage to be
// a meaningful regression net, unique names, sane bands.
func TestTableWellFormed(t *testing.T) {
	checks := Checks()
	if len(checks) < 15 {
		t.Fatalf("only %d checks; the suite pins at least 15 EXPERIMENTS.md rows", len(checks))
	}
	seen := map[string]bool{}
	for _, c := range checks {
		key := c.Table + "/" + c.Name
		if seen[key] {
			t.Errorf("duplicate check %q", key)
		}
		seen[key] = true
		if c.Low > c.High {
			t.Errorf("%s: inverted band [%g, %g]", key, c.Low, c.High)
		}
		if c.Value == nil {
			t.Errorf("%s: nil Value func", key)
		}
		if c.Table == "" || c.Name == "" {
			t.Errorf("check %+v: empty table or name", c)
		}
	}
}

// TestEvaluateAndFailures exercises the evaluation plumbing on a synthetic
// pass/fail split without running a campaign.
func TestEvaluateAndFailures(t *testing.T) {
	results := []Result{
		{Check: Check{Table: "T", Name: "a"}, Got: 1, OK: true},
		{Check: Check{Table: "T", Name: "b"}, Got: 9, OK: false},
	}
	bad := Failures(results)
	if len(bad) != 1 || bad[0].Check.Name != "b" {
		t.Fatalf("Failures = %v, want just b", bad)
	}
	if s := results[1].String(); !strings.Contains(s, "FAIL") || !strings.Contains(s, "b") {
		t.Errorf("failure String() = %q, want FAIL marker and name", s)
	}
	if s := results[0].String(); !strings.Contains(s, "ok") {
		t.Errorf("ok String() = %q, want ok marker", s)
	}
}

// TestVerdictString pins the markers to the EXPERIMENTS.md legend.
func TestVerdictString(t *testing.T) {
	if Reproduced.String() != "✓" || Directional.String() != "▲" {
		t.Fatalf("verdict markers drifted: %s %s", Reproduced, Directional)
	}
}
