// Package fidelity encodes EXPERIMENTS.md as a machine-checkable contract.
//
// Every ✓ and ▲ row of the paper-vs-measured tables (Tables 2–6 and the
// headline figure statistics) becomes a Check: a quantity computed from the
// reference run's reports, the paper's published value, and the tolerance
// band inside which the row's verdict holds. The regression suite
// (internal/analysis/fidelity_test.go) replays the reference campaign and
// evaluates the table, so a calibration change that silently breaks a
// reproduced finding turns into a test failure naming the EXPERIMENTS.md
// row it contradicts.
//
// Bands are deliberately wider than the exact measured values: they pin the
// *verdict* (the ratio, ordering, or share the paper reports), not the last
// digit of one seed's draw. A check failing means the reproduction story
// documented in EXPERIMENTS.md is no longer true.
package fidelity

import (
	"fmt"

	"iolayers/internal/analysis"
	"iolayers/internal/darshan"
	"iolayers/internal/iosim"
	"iolayers/internal/units"
)

// Reference run parameters: all bands assume this campaign.
const (
	RefJobScale  = 0.005
	RefFileScale = 0.05
	RefSeed      = 42
)

// Verdict mirrors the EXPERIMENTS.md cell markers for rows the suite
// enforces (✗ rows document known gaps and are not pinned).
type Verdict int

const (
	// Reproduced is a ✓ row: the paper's finding holds quantitatively.
	Reproduced Verdict = iota
	// Directional is a ▲ row: the ordering/dominance holds with a
	// documented magnitude gap. The band pins the direction staying right.
	Directional
)

func (v Verdict) String() string {
	if v == Reproduced {
		return "✓"
	}
	return "▲"
}

// Suite holds the reference reports the checks read.
type Suite struct {
	Summit *analysis.Report
	Cori   *analysis.Report
}

// Check pins one quantity of the reference run to the band its
// EXPERIMENTS.md verdict requires.
type Check struct {
	// Table names the EXPERIMENTS.md section the row lives in.
	Table string
	// Name restates the row's quantity.
	Name string
	// Paper is the paper's published value, for the failure message.
	Paper float64
	// Verdict is the enforced cell marker.
	Verdict Verdict
	// Low and High bound the measured value (inclusive).
	Low, High float64
	// Value computes the quantity from the reference reports.
	Value func(s *Suite) float64
}

// Result is one evaluated check.
type Result struct {
	Check Check
	Got   float64
	OK    bool
}

func (r Result) String() string {
	status := "ok"
	if !r.OK {
		status = "FAIL"
	}
	return fmt.Sprintf("%s: %s [%s]: got %.4g, band [%.4g, %.4g], paper %.4g: %s",
		r.Check.Table, r.Check.Name, r.Check.Verdict, r.Got,
		r.Check.Low, r.Check.High, r.Check.Paper, status)
}

// Evaluate runs every check against the suite's reports.
func Evaluate(s *Suite) []Result {
	checks := Checks()
	out := make([]Result, len(checks))
	for i, c := range checks {
		got := c.Value(s)
		out[i] = Result{Check: c, Got: got, OK: got >= c.Low && got <= c.High}
	}
	return out
}

// Failures filters the evaluated results down to the broken rows.
func Failures(results []Result) []Result {
	var bad []Result
	for _, r := range results {
		if !r.OK {
			bad = append(bad, r)
		}
	}
	return bad
}

// Helper accessors. Layer 0 is the PFS, layer 1 the in-system layer
// (analysis.Report's documented order).

func pfs(r *analysis.Report) *analysis.LayerStats { return r.Layers[0].Stats }
func ins(r *analysis.Report) *analysis.LayerStats { return r.Layers[1].Stats }

func logsPerJob(r *analysis.Report) float64 {
	return float64(r.Summary.Logs) / float64(r.Summary.Jobs)
}

// scaledFiles projects the campaign's file count back to the paper's full
// year: files scale with both the job and per-log file scales.
func scaledFiles(r *analysis.Report) float64 {
	return float64(r.Summary.Files) / (RefJobScale * RefFileScale)
}

func scaledNodeHours(r *analysis.Report) float64 {
	return r.Summary.NodeHours / RefJobScale
}

// trackedJobs is Table 5's denominator: jobs with at least one file record.
func trackedJobs(r *analysis.Report) float64 {
	e := r.Exclusivity
	return float64(e.InSystemOnly + e.Both + e.PFSOnly)
}

// interfaceShare is a layer's Table 6 share for one interface.
func interfaceShare(ls *analysis.LayerStats, m darshan.ModuleID) float64 {
	var total int64
	for _, mod := range darshan.InterfaceModules() {
		total += ls.InterfaceFiles[mod]
	}
	if total == 0 {
		return 0
	}
	return float64(ls.InterfaceFiles[m]) / float64(total)
}

// stdioOverallShare is the Finding-D statistic: STDIO files across both
// layers as a share of all interface-attributed files.
func stdioOverallShare(r *analysis.Report) float64 {
	var stdio, total int64
	for _, lr := range r.Layers {
		for _, mod := range darshan.InterfaceModules() {
			total += lr.Stats.InterfaceFiles[mod]
		}
		stdio += lr.Stats.InterfaceFiles[darshan.ModuleSTDIO]
	}
	if total == 0 {
		return 0
	}
	return float64(stdio) / float64(total)
}

// cdfUnder1G is a Figure 3 point: the fraction of files whose per-direction
// transfer is at most 1 GiB on the given layer kind.
func cdfUnder1G(r *analysis.Report, kind iosim.LayerKind, d analysis.Direction) float64 {
	cdf := r.TransferCDF(kind, d)
	if len(cdf) <= int(units.TransferTo1G) {
		return 0
	}
	return cdf[units.TransferTo1G]
}

// Checks returns the enforced rows. The slice is rebuilt on every call so
// callers may not mutate shared state.
func Checks() []Check {
	return []Check{
		// ---- Table 2: campaign summary ----
		{Table: "Table 2", Name: "Summit logs per job", Paper: 27.5, Verdict: Reproduced,
			Low: 24, High: 33,
			Value: func(s *Suite) float64 { return logsPerJob(s.Summit) }},
		{Table: "Table 2", Name: "Cori logs per job", Paper: 5.8, Verdict: Reproduced,
			Low: 4.8, High: 7.2,
			Value: func(s *Suite) float64 { return logsPerJob(s.Cori) }},
		{Table: "Table 2", Name: "Summit files (scaled to full year)", Paper: 1.294e9, Verdict: Reproduced,
			Low: 1.0e9, High: 1.8e9,
			Value: func(s *Suite) float64 { return scaledFiles(s.Summit) }},
		{Table: "Table 2", Name: "Cori files (scaled to full year)", Paper: 4.16e8, Verdict: Reproduced,
			Low: 3.2e8, High: 5.5e8,
			Value: func(s *Suite) float64 { return scaledFiles(s.Cori) }},
		{Table: "Table 2", Name: "Summit node-hours (scaled)", Paper: 1.64e7, Verdict: Directional,
			Low: 0.75e7, High: 1.7e7,
			Value: func(s *Suite) float64 { return scaledNodeHours(s.Summit) }},
		{Table: "Table 2", Name: "Cori node-hours (scaled)", Paper: 4.55e7, Verdict: Reproduced,
			Low: 3.4e7, High: 5.5e7,
			Value: func(s *Suite) float64 { return scaledNodeHours(s.Cori) }},

		// ---- Table 3: files and volume per layer ----
		{Table: "Table 3", Name: "Summit PFS/SCNL file ratio", Paper: 3.63, Verdict: Directional,
			Low: 2.5, High: 9,
			Value: func(s *Suite) float64 {
				return float64(pfs(s.Summit).Files) / float64(ins(s.Summit).Files)
			}},
		{Table: "Table 3", Name: "Summit PFS write/read volume ratio", Paper: 41.9, Verdict: Directional,
			Low: 4, High: 60,
			Value: func(s *Suite) float64 {
				ls := pfs(s.Summit)
				return ls.Bytes[analysis.Write] / ls.Bytes[analysis.Read]
			}},
		{Table: "Table 3", Name: "Summit SCNL read/write volume ratio", Paper: 1.65, Verdict: Reproduced,
			Low: 1.05, High: 2.5,
			Value: func(s *Suite) float64 {
				ls := ins(s.Summit)
				return ls.Bytes[analysis.Read] / ls.Bytes[analysis.Write]
			}},
		{Table: "Table 3", Name: "Cori PFS/CBB file ratio", Paper: 28.87, Verdict: Reproduced,
			Low: 18, High: 42,
			Value: func(s *Suite) float64 {
				return float64(pfs(s.Cori).Files) / float64(ins(s.Cori).Files)
			}},
		{Table: "Table 3", Name: "Cori PFS read/write volume ratio", Paper: 6.58, Verdict: Reproduced,
			Low: 1.5, High: 10,
			Value: func(s *Suite) float64 {
				ls := pfs(s.Cori)
				return ls.Bytes[analysis.Read] / ls.Bytes[analysis.Write]
			}},
		{Table: "Table 3", Name: "Cori CBB read/write volume ratio", Paper: 3.16, Verdict: Reproduced,
			Low: 1.3, High: 5,
			Value: func(s *Suite) float64 {
				ls := ins(s.Cori)
				return ls.Bytes[analysis.Read] / ls.Bytes[analysis.Write]
			}},

		// ---- Table 4: >1 TB files ----
		{Table: "Table 4", Name: "Summit SCNL >1TB files (reads+writes)", Paper: 0, Verdict: Reproduced,
			Low: 0, High: 0,
			Value: func(s *Suite) float64 {
				ls := ins(s.Summit)
				return float64(ls.HugeFiles[analysis.Read] + ls.HugeFiles[analysis.Write])
			}},

		// ---- Table 5: job layer exclusivity ----
		{Table: "Table 5", Name: "Summit in-system-only jobs", Paper: 0, Verdict: Reproduced,
			Low: 0, High: 0,
			Value: func(s *Suite) float64 { return float64(s.Summit.Exclusivity.InSystemOnly) }},
		{Table: "Table 5", Name: "Summit both-layer job share", Paper: 0.0140, Verdict: Reproduced,
			Low: 0.007, High: 0.026,
			Value: func(s *Suite) float64 {
				return float64(s.Summit.Exclusivity.Both) / trackedJobs(s.Summit)
			}},
		{Table: "Table 5", Name: "Cori CBB-exclusive job share", Paper: 0.1438, Verdict: Reproduced,
			Low: 0.09, High: 0.19,
			Value: func(s *Suite) float64 {
				return float64(s.Cori.Exclusivity.InSystemOnly) / trackedJobs(s.Cori)
			}},
		{Table: "Table 5", Name: "Cori both-layer job share", Paper: 0.0499, Verdict: Reproduced,
			Low: 0.02, High: 0.08,
			Value: func(s *Suite) float64 {
				return float64(s.Cori.Exclusivity.Both) / trackedJobs(s.Cori)
			}},
		{Table: "Table 5", Name: "jobs with no file records exist (Table 5 < Table 2)", Paper: 1, Verdict: Reproduced,
			Low: 1, High: 1,
			Value: func(s *Suite) float64 {
				ok := s.Summit.Exclusivity.Untracked > 0 && s.Cori.Exclusivity.Untracked > 0
				if ok {
					return 1
				}
				return 0
			}},

		// ---- Table 6: files per I/O interface ----
		{Table: "Table 6", Name: "Summit PFS POSIX file share", Paper: 0.57, Verdict: Reproduced,
			Low: 0.52, High: 0.62,
			Value: func(s *Suite) float64 { return interfaceShare(pfs(s.Summit), darshan.ModulePOSIX) }},
		{Table: "Table 6", Name: "Summit PFS MPI-IO file share", Paper: 0.12, Verdict: Reproduced,
			Low: 0.09, High: 0.15,
			Value: func(s *Suite) float64 { return interfaceShare(pfs(s.Summit), darshan.ModuleMPIIO) }},
		{Table: "Table 6", Name: "Summit PFS STDIO file share", Paper: 0.31, Verdict: Reproduced,
			Low: 0.26, High: 0.36,
			Value: func(s *Suite) float64 { return interfaceShare(pfs(s.Summit), darshan.ModuleSTDIO) }},
		{Table: "Table 6", Name: "Summit SCNL STDIO/POSIX file ratio", Paper: 4.37, Verdict: Reproduced,
			Low: 3.3, High: 5.6,
			Value: func(s *Suite) float64 {
				ls := ins(s.Summit)
				return float64(ls.InterfaceFiles[darshan.ModuleSTDIO]) /
					float64(ls.InterfaceFiles[darshan.ModulePOSIX])
			}},
		{Table: "Table 6", Name: "Cori PFS POSIX file share", Paper: 0.51, Verdict: Reproduced,
			Low: 0.46, High: 0.56,
			Value: func(s *Suite) float64 { return interfaceShare(pfs(s.Cori), darshan.ModulePOSIX) }},
		{Table: "Table 6", Name: "Cori PFS MPI-IO file share", Paper: 0.34, Verdict: Reproduced,
			Low: 0.29, High: 0.39,
			Value: func(s *Suite) float64 { return interfaceShare(pfs(s.Cori), darshan.ModuleMPIIO) }},
		{Table: "Table 6", Name: "Cori PFS STDIO file share", Paper: 0.15, Verdict: Reproduced,
			Low: 0.11, High: 0.19,
			Value: func(s *Suite) float64 { return interfaceShare(pfs(s.Cori), darshan.ModuleSTDIO) }},
		{Table: "Table 6", Name: "Summit overall STDIO file share (Finding D)", Paper: 0.398, Verdict: Reproduced,
			Low: 0.32, High: 0.45,
			Value: func(s *Suite) float64 { return stdioOverallShare(s.Summit) }},
		{Table: "Table 6", Name: "Cori overall STDIO file share (Finding D)", Paper: 0.142, Verdict: Reproduced,
			Low: 0.10, High: 0.19,
			Value: func(s *Suite) float64 { return stdioOverallShare(s.Cori) }},

		// ---- Figure 3: transfer-size CDF headline points (Finding B) ----
		{Table: "Figure 3", Name: "Summit PFS reads ≤1GB file share", Paper: 0.97, Verdict: Reproduced,
			Low: 0.94, High: 1.0,
			Value: func(s *Suite) float64 { return cdfUnder1G(s.Summit, iosim.ParallelFS, analysis.Read) }},
		{Table: "Figure 3", Name: "Summit SCNL reads ≤1GB file share", Paper: 0.99, Verdict: Reproduced,
			Low: 0.97, High: 1.0,
			Value: func(s *Suite) float64 { return cdfUnder1G(s.Summit, iosim.InSystem, analysis.Read) }},
		{Table: "Figure 3", Name: "Cori PFS reads ≤1GB file share", Paper: 0.9905, Verdict: Reproduced,
			Low: 0.95, High: 1.0,
			Value: func(s *Suite) float64 { return cdfUnder1G(s.Cori, iosim.ParallelFS, analysis.Read) }},

		// ---- Figure 10 / §3.3.2 joins ----
		{Table: "Figure 10", Name: "Summit jobs using STDIO", Paper: 0.62, Verdict: Directional,
			Low: 0.62, High: 0.95,
			Value: func(s *Suite) float64 { return s.Summit.StdioJobFraction }},
		{Table: "Figure 10", Name: "Cori domain-join coverage", Paper: 0.9002, Verdict: Reproduced,
			Low: 0.85, High: 0.94,
			Value: func(s *Suite) float64 { return s.Cori.DomainCoverage }},
	}
}
