package report

import (
	"encoding/csv"
	"fmt"
	"strconv"
	"strings"

	"iolayers/internal/analysis"
	"iolayers/internal/darshan"
	"iolayers/internal/units"
)

// CSV renders the figure series as machine-readable CSV for external
// plotting — the form the paper's figures would be regenerated from.
// Sections are concatenated with a leading "# <figure>" comment line each.
func CSV(r *analysis.Report) string {
	var b strings.Builder

	section := func(name string, header []string, rows [][]string) {
		fmt.Fprintf(&b, "# %s (%s)\n", name, r.Summary.System)
		w := csv.NewWriter(&b)
		_ = w.Write(header)
		for _, row := range rows {
			_ = w.Write(row)
		}
		w.Flush()
		b.WriteByte('\n')
	}

	// Figure 3: transfer-size CDFs.
	{
		rows := make([][]string, 0, units.NumTransferBins)
		for i, bin := range units.TransferBins() {
			row := []string{bin.String()}
			for _, lr := range r.Layers {
				for _, d := range []analysis.Direction{analysis.Read, analysis.Write} {
					row = append(row, f64(r.TransferCDF(lr.Kind, d)[i]))
				}
			}
			rows = append(rows, row)
		}
		header := []string{"bin"}
		for _, lr := range r.Layers {
			header = append(header, lr.Layer+"_read", lr.Layer+"_write")
		}
		section("figure3_transfer_cdf", header, rows)
	}

	// Figures 4/5: request-size CDFs.
	for _, large := range []bool{false, true} {
		name := "figure4_request_cdf"
		if large {
			name = "figure5_request_cdf_large_jobs"
		}
		rows := make([][]string, 0, units.NumRequestBins)
		for i, bin := range units.RequestBins() {
			row := []string{bin.String()}
			for _, lr := range r.Layers {
				for _, d := range []analysis.Direction{analysis.Read, analysis.Write} {
					row = append(row, f64(r.RequestCDF(lr.Kind, d, large)[i]))
				}
			}
			rows = append(rows, row)
		}
		header := []string{"bin"}
		for _, lr := range r.Layers {
			header = append(header, lr.Layer+"_read", lr.Layer+"_write")
		}
		section(name, header, rows)
	}

	// Figures 6/8: classification counts.
	for _, stdioOnly := range []bool{false, true} {
		name := "figure6_classification"
		if stdioOnly {
			name = "figure8_classification_stdio"
		}
		var rows [][]string
		for _, lr := range r.Layers {
			counts := lr.Stats.ClassFiles
			if stdioOnly {
				counts = lr.Stats.StdioClassFiles
			}
			for c := analysis.ReadOnly; c <= analysis.WriteOnly; c++ {
				rows = append(rows, []string{lr.Layer, c.String(),
					strconv.FormatInt(counts[c], 10)})
			}
		}
		section(name, []string{"layer", "class", "files"}, rows)
	}

	// Figures 7/10: domain series.
	{
		var rows [][]string
		for _, d := range r.Domains {
			rows = append(rows, []string{d.Domain,
				f64(d.InSystemBytes[0]), f64(d.InSystemBytes[1]),
				f64(d.StdioBytes[0]), f64(d.StdioBytes[1])})
		}
		section("figure7_10_domains", []string{
			"domain", "insystem_read_bytes", "insystem_write_bytes",
			"stdio_read_bytes", "stdio_write_bytes"}, rows)
	}

	// Figures 11/12: performance boxplots.
	{
		var rows [][]string
		for _, s := range r.PerfSummaries() {
			rows = append(rows, []string{
				s.Layer, s.Direction.String(), s.Interface.String(), s.Bin.String(),
				strconv.Itoa(s.Box.N),
				f64(s.Box.Min), f64(s.Box.Q1), f64(s.Box.Median),
				f64(s.Box.Q3), f64(s.Box.Max),
			})
		}
		section("figure11_12_perf_mbps", []string{
			"layer", "dir", "iface", "bin", "n", "min", "q1", "median", "q3", "max"}, rows)
	}

	// Figure 9: per-interface transfer CDFs.
	{
		var rows [][]string
		for _, lr := range r.Layers {
			for _, m := range darshan.InterfaceModules() {
				for _, d := range []analysis.Direction{analysis.Read, analysis.Write} {
					cdf := r.InterfaceTransferCDF(lr.Kind, m, d)
					if cdf == nil {
						continue
					}
					for i, bin := range units.TransferBins() {
						rows = append(rows, []string{lr.Layer, m.String(),
							d.String(), bin.String(), f64(cdf[i])})
					}
				}
			}
		}
		section("figure9_interface_transfer_cdf",
			[]string{"layer", "iface", "dir", "bin", "cdf"}, rows)
	}

	return b.String()
}

func f64(v float64) string {
	return strconv.FormatFloat(v, 'g', 8, 64)
}
