package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRenderTextAllMatchesEverything(t *testing.T) {
	r := smallReport(t)
	var b bytes.Buffer
	if err := Render(&b, r, Options{}); err != nil {
		t.Fatalf("Render: %v", err)
	}
	want := Everything(r)
	if !strings.HasSuffix(want, "\n") {
		want += "\n"
	}
	if b.String() != want {
		t.Errorf("Render text/all diverged from Everything:\ngot %d bytes, want %d bytes", b.Len(), len(want))
	}
}

func TestRenderJSONIsDeterministicAndVersioned(t *testing.T) {
	r := smallReport(t)
	var a, b bytes.Buffer
	if err := Render(&a, r, Options{Format: FormatJSON}); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if err := Render(&b, r, Options{Format: FormatJSON}); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two JSON renders of the same report differ")
	}
	var doc Document
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.SchemaVersion != SchemaVersion {
		t.Errorf("schema_version = %d, want %d", doc.SchemaVersion, SchemaVersion)
	}
	if doc.System != "Summit" {
		t.Errorf("system = %q, want Summit", doc.System)
	}
	if doc.Summary.Logs != 1 {
		t.Errorf("summary.logs = %d, want 1", doc.Summary.Logs)
	}
	if len(doc.Sections) != 14 {
		t.Errorf("full document has %d sections, want 14 (no faults in this campaign)", len(doc.Sections))
	}
	if doc.Section != "" {
		t.Errorf("full document carries section = %q, want empty", doc.Section)
	}
	if !bytes.HasSuffix(a.Bytes(), []byte("\n")) {
		t.Error("JSON document missing trailing newline")
	}
}

func TestRenderJSONSingleSection(t *testing.T) {
	r := smallReport(t)
	var b bytes.Buffer
	if err := Render(&b, r, Options{Format: FormatJSON, Section: "table2"}); err != nil {
		t.Fatalf("Render: %v", err)
	}
	var doc Document
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Section != "table2" || len(doc.Sections) != 1 || doc.Sections[0].Name != "table2" {
		t.Errorf("section document malformed: section=%q sections=%d", doc.Section, len(doc.Sections))
	}
	if !strings.Contains(doc.Sections[0].Text, "Table 2") {
		t.Error("table2 section text missing its title")
	}
}

func TestSectionAliasesAndUnknown(t *testing.T) {
	r := smallReport(t)
	f11, err := Section(r, "figure11")
	if err != nil {
		t.Fatalf("figure11: %v", err)
	}
	f12, err := Section(r, "figure12")
	if err != nil {
		t.Fatalf("figure12: %v", err)
	}
	if f11 != f12 {
		t.Error("figure12 alias does not render figure11")
	}
	e1, err := Section(r, "e1")
	if err != nil {
		t.Fatalf("e1: %v", err)
	}
	if e1 != ExtensionSTDIOX(r) {
		t.Error("e1 alias does not render the extension section")
	}
	if _, err := Section(r, "table99"); err == nil {
		t.Error("unknown section did not error")
	}
	if _, err := Section(r, "faults"); err != ErrNoFaultData {
		t.Errorf("faults on clean campaign: err = %v, want ErrNoFaultData", err)
	}
}

func TestSectionNamesCoverEverySection(t *testing.T) {
	r := smallReport(t)
	names := SectionNames()
	if len(names) < 19 {
		t.Fatalf("only %d sections registered", len(names))
	}
	for _, n := range names {
		if n == "faults" {
			continue // errors without fault data, by design
		}
		if _, err := Section(r, n); err != nil {
			t.Errorf("Section(%q): %v", n, err)
		}
	}
}

func TestRenderCSV(t *testing.T) {
	r := smallReport(t)
	var b bytes.Buffer
	if err := Render(&b, r, Options{Format: FormatCSV}); err != nil {
		t.Fatalf("Render csv: %v", err)
	}
	if b.String() != CSV(r) {
		t.Error("Render csv diverged from CSV()")
	}
	if err := Render(&b, r, Options{Format: FormatCSV, Section: "table2"}); err == nil {
		t.Error("csv with section selection did not error")
	}
}

func TestParseFormat(t *testing.T) {
	for in, want := range map[string]Format{
		"": FormatText, "text": FormatText, "JSON": FormatJSON, "csv": FormatCSV,
	} {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Error("ParseFormat(yaml) did not error")
	}
}
