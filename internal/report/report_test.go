package report

import (
	"math/rand/v2"
	"strings"
	"testing"

	"iolayers/internal/analysis"
	"iolayers/internal/darshan"
	"iolayers/internal/iosim"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/units"
)

func TestHumanBytes(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0 B"},
		{512, "512 B"},
		{2048, "2.05 KB"},
		{3.5e6, "3.50 MB"},
		{7.2e9, "7.20 GB"},
		{1.5e12, "1.50 TB"},
		{8.278e18, "8278.00 PB" /* Summit's famous write volume */},
	}
	for _, c := range cases {
		if got := HumanBytes(c.in); got != c.want {
			t.Errorf("HumanBytes(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestHumanCount(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{7, "7"},
		{999, "999"},
		{2816, "2.8K"},
		{7740000, "7.74M"},
	}
	for _, c := range cases {
		if got := HumanCount(c.in); got != c.want {
			t.Errorf("HumanCount(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

// smallReport builds a tiny real report for rendering tests.
func smallReport(t *testing.T) *analysis.Report {
	t.Helper()
	sys := systems.NewSummit()
	agg := analysis.NewAggregator(sys)
	rt := darshan.NewRuntime(darshan.JobHeader{
		JobID: 1, UserID: 1, NProcs: 8, StartTime: 0, EndTime: 3600,
		Metadata: map[string]string{"domain": "Physics"},
	})
	c := iosim.NewClient(sys, rt, rand.New(rand.NewPCG(1, 1)))
	c.Write(darshan.ModulePOSIX, "/gpfs/alpine/phys/a.h5", 0, 10*units.MiB, 0)
	c.Read(darshan.ModuleSTDIO, "/mnt/bb/phys/b.log", 0, units.MiB, 0)
	c.SharedTransfer(darshan.ModulePOSIX, "/gpfs/alpine/phys/c.chk", iosim.Write, 200*units.MiB, false)
	agg.AddLog(rt.Finalize())
	return agg.Report()
}

func TestTablesContainExpectedContent(t *testing.T) {
	r := smallReport(t)
	checks := map[string][]string{
		Table2(r):         {"Table 2", "Summit", "Node-hours"},
		Table3(r):         {"Table 3", "Alpine", "SCNL"},
		Table4(r):         {"Table 4", "Read files", "Write files"},
		Table5(r):         {"Table 5", "In-system only", "PFS only"},
		Table6(r):         {"Table 6", "POSIX", "MPI-IO", "STDIO"},
		Figure3(r):        {"Figure 3", "1TB+", "Alpine/read"},
		Figure4(r, false): {"Figure 4", "0_100", "1G_PLUS"},
		Figure4(r, true):  {"Figure 5", "0_100"},
		Figure6(r, false): {"Figure 6", "read-only", "write-only"},
		Figure6(r, true):  {"Figure 8", "read-only"},
		Figure7(r):        {"Figure 7", "Physics"},
		Figure9(r):        {"Figure 9", "POSIX"},
		Figure10(r):       {"Figure 10", "Physics", "coverage"},
		Figure11(r):       {"Figures 11/12", "Median"},
	}
	for out, wants := range checks {
		for _, w := range wants {
			if !strings.Contains(out, w) {
				t.Errorf("output missing %q:\n%s", w, out)
			}
		}
	}
}

func TestEverythingIncludesAllSections(t *testing.T) {
	out := Everything(smallReport(t))
	for _, section := range []string{
		"Table 2", "Table 3", "Table 4", "Table 5", "Table 6",
		"Figure 3", "Figure 4", "Figure 5", "Figure 6", "Figure 7",
		"Figure 8", "Figure 9", "Figure 10", "Figures 11/12",
	} {
		if !strings.Contains(out, section) {
			t.Errorf("Everything missing %q", section)
		}
	}
}

func TestFigure11ShowsSharedFilePerf(t *testing.T) {
	out := Figure11(smallReport(t))
	if !strings.Contains(out, "Alpine") || !strings.Contains(out, "write") {
		t.Errorf("perf table missing the shared write:\n%s", out)
	}
}

func TestTableAlignment(t *testing.T) {
	// Every rendered table's rows must be equal-or-shorter than the header
	// separator logic implies; simply check no row is empty and the
	// separator row exists.
	out := Table3(smallReport(t))
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 4 {
		t.Fatalf("table too short:\n%s", out)
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("missing separator row: %q", lines[2])
	}
}

func TestLayerKindName(t *testing.T) {
	if LayerKindName(iosim.ParallelFS) != "PFS" {
		t.Error("LayerKindName(PFS)")
	}
}
