// Package report renders analysis results as the tables and figure series
// of the paper: plain-text tables mirroring Tables 2–6 and labeled data
// series (one row per bin) for Figures 3–12, suitable for diffing against
// EXPERIMENTS.md or plotting externally.
package report

import (
	"fmt"
	"sort"
	"strings"

	"iolayers/internal/analysis"
	"iolayers/internal/darshan"
	"iolayers/internal/iosim"
	"iolayers/internal/iosim/serverstats"
	"iolayers/internal/units"
)

// HumanBytes renders a byte volume with a decimal unit, as the paper's
// tables do (PB/TB/GB/MB).
func HumanBytes(b float64) string {
	switch {
	case b >= 1e15:
		return fmt.Sprintf("%.2f PB", b/1e15)
	case b >= 1e12:
		return fmt.Sprintf("%.2f TB", b/1e12)
	case b >= 1e9:
		return fmt.Sprintf("%.2f GB", b/1e9)
	case b >= 1e6:
		return fmt.Sprintf("%.2f MB", b/1e6)
	case b >= 1e3:
		return fmt.Sprintf("%.2f KB", b/1e3)
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}

// HumanCount renders a count with M/K suffixes, as Table 2 does.
func HumanCount(n int64) string {
	switch {
	case n >= 1_000_000:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.1fK", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// table renders a fixed-width text table.
func table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Table2 renders the campaign summary (paper Table 2) for one or more
// systems.
func Table2(reports ...*analysis.Report) string {
	rows := make([][]string, 0, len(reports))
	for _, r := range reports {
		rows = append(rows, []string{
			r.Summary.System,
			HumanCount(r.Summary.Logs),
			HumanCount(r.Summary.Jobs),
			HumanCount(r.Summary.Files),
			fmt.Sprintf("%.1f", r.Summary.NodeHours),
		})
	}
	return "Table 2: Darshan data summary\n" +
		table([]string{"System", "Logs", "Jobs", "Files", "Node-hours"}, rows)
}

// Table3 renders per-layer file counts and transfer volumes (paper Table 3).
func Table3(r *analysis.Report) string {
	rows := make([][]string, 0, 2)
	for _, lr := range r.Layers {
		rows = append(rows, []string{
			r.Summary.System,
			lr.Layer,
			HumanCount(lr.Stats.Files),
			HumanBytes(lr.Stats.Bytes[analysis.Read]),
			HumanBytes(lr.Stats.Bytes[analysis.Write]),
		})
	}
	return "Table 3: files and data transfer per storage layer\n" +
		table([]string{"System", "Layer", "Files", "Read", "Write"}, rows)
}

// Table4 renders the >1 TB file tails (paper Table 4).
func Table4(r *analysis.Report) string {
	rows := make([][]string, 0, 2)
	for _, lr := range r.Layers {
		rows = append(rows, []string{
			r.Summary.System,
			lr.Layer,
			fmt.Sprintf("%d", lr.Stats.HugeFiles[analysis.Read]),
			fmt.Sprintf("%d", lr.Stats.HugeFiles[analysis.Write]),
		})
	}
	return "Table 4: files with >1 TB total data transfer\n" +
		table([]string{"System", "Layer", "Read files", "Write files"}, rows)
}

// Table5 renders job layer exclusivity (paper Table 5).
func Table5(r *analysis.Report) string {
	e := r.Exclusivity
	rows := [][]string{{
		r.Summary.System,
		HumanCount(e.InSystemOnly),
		HumanCount(e.Both),
		HumanCount(e.PFSOnly),
	}}
	return "Table 5: jobs accessing files exclusively per layer\n" +
		table([]string{"System", "In-system only", "Both", "PFS only"}, rows)
}

// Table6 renders files per I/O interface per layer (paper Table 6).
func Table6(r *analysis.Report) string {
	rows := make([][]string, 0, 2)
	for _, lr := range r.Layers {
		rows = append(rows, []string{
			r.Summary.System,
			lr.Layer,
			HumanCount(lr.Stats.InterfaceFiles[darshan.ModulePOSIX]),
			HumanCount(lr.Stats.InterfaceFiles[darshan.ModuleMPIIO]),
			HumanCount(lr.Stats.InterfaceFiles[darshan.ModuleSTDIO]),
		})
	}
	return "Table 6: files per I/O interface\n" +
		table([]string{"System", "Layer", "POSIX", "MPI-IO", "STDIO"}, rows)
}

func cdfRows(labels []string, series map[string][]float64, order []string) [][]string {
	rows := make([][]string, 0, len(labels))
	for i, label := range labels {
		row := []string{label}
		for _, name := range order {
			s := series[name]
			if s == nil || i >= len(s) {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.4f", s[i]))
			}
		}
		rows = append(rows, row)
	}
	return rows
}

func transferBinLabels() []string {
	bins := units.TransferBins()
	labels := make([]string, len(bins))
	for i, b := range bins {
		labels[i] = b.String()
	}
	return labels
}

func requestBinLabels() []string {
	bins := units.RequestBins()
	labels := make([]string, len(bins))
	for i, b := range bins {
		labels[i] = b.String()
	}
	return labels
}

// Figure3 renders the per-file transfer-size CDFs (paper Figure 3) for one
// system: four series (layer × direction) over the transfer bins.
func Figure3(r *analysis.Report) string {
	series := map[string][]float64{}
	var order []string
	for _, lr := range r.Layers {
		for _, d := range []analysis.Direction{analysis.Read, analysis.Write} {
			name := fmt.Sprintf("%s/%s", lr.Layer, d)
			series[name] = r.TransferCDF(lr.Kind, d)
			order = append(order, name)
		}
	}
	return fmt.Sprintf("Figure 3 (%s): CDF of per-file transfer size\n", r.Summary.System) +
		table(append([]string{"bin"}, order...), cdfRows(transferBinLabels(), series, order))
}

// Figure4 renders the request-size CDFs (paper Figure 4); largeOnly renders
// the >1024-process variant (paper Figure 5).
func Figure4(r *analysis.Report, largeOnly bool) string {
	series := map[string][]float64{}
	var order []string
	for _, lr := range r.Layers {
		for _, d := range []analysis.Direction{analysis.Read, analysis.Write} {
			name := fmt.Sprintf("%s/%s", lr.Layer, d)
			series[name] = r.RequestCDF(lr.Kind, d, largeOnly)
			order = append(order, name)
		}
	}
	title := "Figure 4"
	if largeOnly {
		title = "Figure 5 (jobs >1024 procs)"
	}
	return fmt.Sprintf("%s (%s): CDF of request sizes\n", title, r.Summary.System) +
		table(append([]string{"bin"}, order...), cdfRows(requestBinLabels(), series, order))
}

// Figure6 renders the file classification (paper Figure 6); stdioOnly
// renders the STDIO-only variant (paper Figure 8).
func Figure6(r *analysis.Report, stdioOnly bool) string {
	title := "Figure 6: file classification (POSIX+STDIO)"
	if stdioOnly {
		title = "Figure 8: file classification (STDIO only)"
	}
	rows := make([][]string, 0, 6)
	for _, lr := range r.Layers {
		counts := lr.Stats.ClassFiles
		if stdioOnly {
			counts = lr.Stats.StdioClassFiles
		}
		for c := analysis.ReadOnly; c <= analysis.WriteOnly; c++ {
			rows = append(rows, []string{
				lr.Layer, c.String(), HumanCount(counts[c]),
			})
		}
	}
	return fmt.Sprintf("%s (%s)\n", title, r.Summary.System) +
		table([]string{"Layer", "Class", "Files"}, rows)
}

// Figure7 renders in-system usage by science domain (paper Figure 7).
func Figure7(r *analysis.Report) string {
	rows := make([][]string, 0, len(r.Domains))
	for _, d := range r.Domains {
		if d.InSystemBytes[0] == 0 && d.InSystemBytes[1] == 0 {
			continue
		}
		rows = append(rows, []string{
			d.Domain,
			HumanBytes(d.InSystemBytes[0]),
			HumanBytes(d.InSystemBytes[1]),
		})
	}
	return fmt.Sprintf("Figure 7 (%s): in-system layer usage by science domain\n", r.Summary.System) +
		table([]string{"Domain", "Read", "Write"}, rows)
}

// Figure9 renders the per-interface transfer CDFs (paper Figure 9).
func Figure9(r *analysis.Report) string {
	series := map[string][]float64{}
	var order []string
	for _, lr := range r.Layers {
		for _, m := range darshan.InterfaceModules() {
			for _, d := range []analysis.Direction{analysis.Read, analysis.Write} {
				cdf := r.InterfaceTransferCDF(lr.Kind, m, d)
				if cdf == nil {
					continue
				}
				name := fmt.Sprintf("%s/%s/%s", lr.Layer, m, d)
				series[name] = cdf
				order = append(order, name)
			}
		}
	}
	return fmt.Sprintf("Figure 9 (%s): per-interface CDF of per-file transfer size\n", r.Summary.System) +
		table(append([]string{"bin"}, order...), cdfRows(transferBinLabels(), series, order))
}

// Figure10 renders STDIO transfer by science domain (paper Figure 10),
// including the scheduler-join coverage note of §3.3.2.
func Figure10(r *analysis.Report) string {
	rows := make([][]string, 0, len(r.Domains))
	for _, d := range r.Domains {
		if d.StdioBytes[0] == 0 && d.StdioBytes[1] == 0 {
			continue
		}
		rows = append(rows, []string{
			d.Domain,
			HumanBytes(d.StdioBytes[0]),
			HumanBytes(d.StdioBytes[1]),
		})
	}
	return fmt.Sprintf("Figure 10 (%s): STDIO transfer by science domain (STDIO used by %.1f%% of jobs; domain join coverage %.2f%%)\n",
		r.Summary.System, 100*r.StdioJobFraction, 100*r.DomainCoverage) +
		table([]string{"Domain", "Read", "Write"}, rows)
}

// Figure11 renders the shared-file performance boxplots (paper Figures 11
// and 12: Summit and Cori respectively — the same analysis on each system).
func Figure11(r *analysis.Report) string {
	sums := r.PerfSummaries()
	sort.SliceStable(sums, func(i, j int) bool {
		a, b := sums[i], sums[j]
		if a.Layer != b.Layer {
			return a.Layer < b.Layer
		}
		if a.Direction != b.Direction {
			return a.Direction < b.Direction
		}
		if a.Interface != b.Interface {
			return a.Interface < b.Interface
		}
		return a.Bin < b.Bin
	})
	rows := make([][]string, 0, len(sums))
	for _, s := range sums {
		rows = append(rows, []string{
			s.Layer, s.Direction.String(), s.Interface.String(), s.Bin.String(),
			fmt.Sprintf("%d", s.Box.N),
			fmt.Sprintf("%.1f", s.Box.Q1),
			fmt.Sprintf("%.1f", s.Box.Median),
			fmt.Sprintf("%.1f", s.Box.Q3),
		})
	}
	return fmt.Sprintf("Figures 11/12 (%s): shared-file performance by interface (MB/s)\n", r.Summary.System) +
		table([]string{"Layer", "Dir", "Iface", "Bin", "N", "Q1", "Median", "Q3"}, rows)
}

// ExtensionSTDIOX renders the extended-STDIO statistics this repository
// adds beyond the paper (Recommendation 4 implemented): the per-request
// STDIO access-size CDF and the static/dynamic write split per layer. It
// reports "(module disabled)" when the campaign ran without the extension,
// which is the paper-faithful default.
func ExtensionSTDIOX(r *analysis.Report) string {
	header := fmt.Sprintf("Extension E1 (%s): process-level STDIO counters (Recommendation 4)\n", r.Summary.System)
	any := false
	for _, lr := range r.Layers {
		for d := 0; d < 2; d++ {
			if lr.Stats.StdioXRequestHist[d].Total() > 0 {
				any = true
			}
		}
	}
	if !any {
		return header + "(STDIOX module disabled for this campaign — run with extended instrumentation)\n"
	}

	series := map[string][]float64{}
	var order []string
	for _, lr := range r.Layers {
		for _, d := range []analysis.Direction{analysis.Read, analysis.Write} {
			name := fmt.Sprintf("%s/%s", lr.Layer, d)
			series[name] = lr.Stats.StdioXRequestHist[d].CDF()
			order = append(order, name)
		}
	}
	out := header +
		table(append([]string{"bin"}, order...), cdfRows(requestBinLabels(), series, order))

	rows := make([][]string, 0, 2)
	for _, lr := range r.Layers {
		rw, uq := lr.Stats.StdioXRewriteBytes, lr.Stats.StdioXUniqueBytes
		frac := 0.0
		if rw+uq > 0 {
			frac = rw / (rw + uq)
		}
		rows = append(rows, []string{
			lr.Layer, HumanBytes(uq), HumanBytes(rw), fmt.Sprintf("%.1f%%", 100*frac),
		})
	}
	out += "\nSTDIO write volume split (static = written once, dynamic = rewritten):\n" +
		table([]string{"Layer", "Static", "Dynamic", "Rewrite share"}, rows)
	return out
}

// Users renders the top users by transferred volume — the user-behavior
// concentration view of Lim et al. [9].
func Users(r *analysis.Report) string {
	rows := make([][]string, 0, len(r.TopUsers))
	for _, u := range r.TopUsers {
		rows = append(rows, []string{
			fmt.Sprintf("%d", u.UserID),
			HumanBytes(u.Bytes),
			HumanCount(u.Files),
		})
	}
	return fmt.Sprintf("User view (%s): top users by volume (top-10 move %.1f%% of all traffic)\n",
		r.Summary.System, 100*r.UserVolumeTop10Share) +
		table([]string{"User", "Bytes", "Files"}, rows)
}

// WhatIf compares a baseline campaign against its Recommendation 2
// counterfactual (middleware aggregation platform-wide): aggregate I/O busy
// time per layer and direction, with the speedup the recommendation buys.
func WhatIf(base, agg *analysis.Report) string {
	rows := make([][]string, 0, 4)
	for li := range base.Layers {
		for _, d := range []analysis.Direction{analysis.Read, analysis.Write} {
			b := base.Layers[li].Stats.IOTime[d]
			a := agg.Layers[li].Stats.IOTime[d]
			speed := "-"
			if a > 0 {
				speed = fmt.Sprintf("%.1fx", b/a)
			}
			rows = append(rows, []string{
				base.Layers[li].Layer, d.String(),
				fmt.Sprintf("%.1f s", b), fmt.Sprintf("%.1f s", a), speed,
			})
		}
	}
	return fmt.Sprintf("What-if (%s): Recommendation 2 applied platform-wide\n", base.Summary.System) +
		table([]string{"Layer", "Dir", "Observed I/O time", "Aggregated", "Speedup"}, rows)
}

// Temporal renders the month-by-month activity series — the seasonality
// view server-side studies report ([11], [19]).
func Temporal(r *analysis.Report) string {
	months := []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun",
		"Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}
	var peak int64
	for _, n := range r.MonthlyLogs {
		if n > peak {
			peak = n
		}
	}
	rows := make([][]string, 0, 12)
	for m, name := range months {
		bar := ""
		if peak > 0 {
			bar = strings.Repeat("#", int(30*r.MonthlyLogs[m]/peak))
		}
		rows = append(rows, []string{
			name,
			HumanCount(r.MonthlyLogs[m]),
			HumanBytes(r.MonthlyBytes[m]),
			bar,
		})
	}
	return fmt.Sprintf("Temporal view (%s): activity by calendar month\n", r.Summary.System) +
		table([]string{"Month", "Logs", "Bytes", "Activity"}, rows)
}

// Tuning renders the I/O tuning-adoption analysis — the paper's §5 future
// work ("how many users tune their I/O in subsequent application
// executions"), answered from the logs alone.
func Tuning(r *analysis.Report) string {
	t := r.Tuning
	pct := func(n int) string {
		if t.UsersBothHalves == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(t.UsersBothHalves))
	}
	rows := [][]string{
		{"users active in both half-years", fmt.Sprintf("%d", t.UsersBothHalves), ""},
		{"adopted wider Lustre striping", fmt.Sprintf("%d", t.AdoptedStriping), pct(t.AdoptedStriping)},
		{"adopted collective MPI-IO", fmt.Sprintf("%d", t.AdoptedCollective), pct(t.AdoptedCollective)},
		{"adopted either", fmt.Sprintf("%d", t.AdoptedAny), pct(t.AdoptedAny)},
	}
	return fmt.Sprintf("Future work (§5, %s): I/O tuning adoption across executions\n", r.Summary.System) +
		table([]string{"Signal", "Users", "Share"}, rows)
}

// ServerStats renders the server-side view of a campaign: per-layer load
// imbalance across NSD servers / OSTs / burst-buffer nodes. This is the
// system-level vantage point of the paper's Table 1 taxonomy, the one
// studies like Shantharam et al. [22] used to diagnose server imbalance.
func ServerStats(system string, collectors map[string]*serverstats.Collector) string {
	names := make([]string, 0, len(collectors))
	for n := range collectors {
		names = append(names, n)
	}
	sort.Strings(names)
	rows := make([][]string, 0, len(names))
	for _, n := range names {
		c := collectors[n]
		bi := c.ByteImbalance()
		ri := c.RequestImbalance()
		rows = append(rows, []string{
			n,
			fmt.Sprintf("%d", c.Servers()),
			fmt.Sprintf("%d", bi.IdleServers),
			HumanBytes(bi.Mean),
			HumanBytes(bi.Max),
			fmt.Sprintf("%.2f", bi.PeakRatio),
			fmt.Sprintf("%.3f", bi.Gini),
			fmt.Sprintf("%.2f", ri.PeakRatio),
			fmt.Sprintf("%.1f s", c.DegradedBusySecs()),
		})
	}
	return fmt.Sprintf("Server-side load (%s): per-server imbalance\n", system) +
		table([]string{"Layer", "Servers", "Idle", "Mean bytes", "Max bytes",
			"Byte peak", "Byte Gini", "Req peak", "Degraded"}, rows)
}

// Faults renders the campaign's fault and retry section: operation failure
// and retry counts, time lost to degraded windows, and request-duration
// tails split by fault state. Returns "" when the report carries no fault
// data.
func Faults(r *analysis.Report) string {
	f := r.Faults
	if f == nil {
		return ""
	}
	secs := func(ns int64) string { return fmt.Sprintf("%.1f s", float64(ns)/1e9) }
	tail := func(t analysis.DurationTail) []string {
		if t.N == 0 {
			return []string{"0", "-", "-", "-", "-"}
		}
		ms := func(v float64) string { return fmt.Sprintf("%.3f ms", v*1e3) }
		return []string{HumanCount(t.N), ms(t.P50), ms(t.P90), ms(t.P99), ms(t.Max)}
	}
	rows := [][]string{
		{"schedule", fmt.Sprintf("seed %d, %d windows, err rate %.2g",
			f.ScheduleSeed, f.Windows, f.TransientErrorRate)},
		{"ops in fault windows", HumanCount(f.DegradedOps)},
		{"ops outside windows", HumanCount(f.CleanOps)},
		{"ops retried", HumanCount(f.OpsRetried)},
		{"retry attempts", HumanCount(f.RetryAttempts)},
		{"ops failed (retries exhausted)", HumanCount(f.OpsFailed)},
		{"job failures (demoted)", fmt.Sprintf("%d %v", f.JobFailures, f.FailedJobs)},
		{"time in degraded windows", secs(f.DegradedNanos)},
		{"est. time lost to faults", secs(f.TimeLostNanos)},
	}
	out := fmt.Sprintf("Fault injection (%s): degradation and retries\n", r.Summary.System) +
		table([]string{"Metric", "Value"}, rows)
	tails := [][]string{
		append([]string{"clean"}, tail(f.Clean)...),
		append([]string{"degraded"}, tail(f.Degraded)...),
	}
	out += "\nRequest-duration tails by fault state\n" +
		table([]string{"State", "Samples", "p50", "p90", "p99", "max"}, tails)
	return out
}

// Everything renders all tables and figures for one system. It is the text
// rendering of the standard section set; call sites that want JSON/CSV or a
// single section should use Render or Section instead.
func Everything(r *analysis.Report) string {
	secs := everythingSections(r)
	parts := make([]string, len(secs))
	for i, sec := range secs {
		parts[i] = sec.Text
	}
	return strings.Join(parts, "\n")
}

// LayerKindName is a small helper for CLI output.
func LayerKindName(k iosim.LayerKind) string { return k.String() }
