package report

import (
	"iolayers/internal/analysis"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/predict"
)

// Predict renders the predictive-analytics section: the monthly burst
// model and forecast, the per-layer mix, per-app placement hints, and —
// when the report's system has a model — the closed-loop replay of the
// recommendations. Registered as the "predict" section; excluded from
// Everything so default report bytes are unchanged.
func Predict(r *analysis.Report) string {
	p := predict.FromReport(r)
	if sys := systems.ByName(r.Summary.System); sys != nil {
		p = p.WithReplay(sys, r)
	}
	return p.Text()
}
