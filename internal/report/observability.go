package report

import (
	"fmt"

	"iolayers/internal/obsv"
)

// Observability renders the process's metrics registry as a report section:
// pipeline-stage spans, event counters, size/latency histograms, and pool
// gauges. The same data lands in machine form via `-metrics out.json`.
func Observability(s *obsv.Snapshot) string {
	if s == nil {
		return ""
	}
	return fmt.Sprintf("Observability: pipeline metrics (schema v%d)\n", s.Schema) + s.Text()
}
