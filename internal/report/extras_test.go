package report

import (
	"strings"
	"testing"

	"iolayers/internal/analysis"
	"iolayers/internal/iosim/serverstats"
)

func TestTuningRender(t *testing.T) {
	r := smallReport(t)
	r.Tuning = analysis.TuningAdoption{
		UsersBothHalves: 100, AdoptedStriping: 10, AdoptedCollective: 20, AdoptedAny: 25,
	}
	out := Tuning(r)
	for _, want := range []string{"Future work", "both half-years", "100", "10.0%", "25.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("tuning render missing %q:\n%s", want, out)
		}
	}
}

func TestTuningRenderEmptyPopulation(t *testing.T) {
	r := smallReport(t)
	r.Tuning = analysis.TuningAdoption{}
	out := Tuning(r)
	if !strings.Contains(out, "-") {
		t.Errorf("empty population should render dashes:\n%s", out)
	}
}

func TestTemporalRender(t *testing.T) {
	r := smallReport(t)
	r.MonthlyLogs = [12]int64{10, 20, 30, 0, 0, 0, 0, 0, 0, 0, 0, 60}
	r.MonthlyBytes = [12]float64{1e9, 2e9, 3e9, 0, 0, 0, 0, 0, 0, 0, 0, 6e9}
	out := Temporal(r)
	for _, want := range []string{"Temporal view", "Jan", "Dec", "##"} {
		if !strings.Contains(out, want) {
			t.Errorf("temporal render missing %q:\n%s", want, out)
		}
	}
	// December has peak activity: a full 30-char bar.
	if !strings.Contains(out, strings.Repeat("#", 30)) {
		t.Errorf("peak month missing full bar:\n%s", out)
	}
}

func TestServerStatsRender(t *testing.T) {
	c := serverstats.NewCollector("Alpine", 4)
	c.Record(0, 2, 1000, 0.5)
	c.Record(1, 1, 500, 0.1)
	out := ServerStats("Summit", map[string]*serverstats.Collector{"Alpine": c})
	for _, want := range []string{"Server-side load", "Alpine", "Byte Gini", "Idle"} {
		if !strings.Contains(out, want) {
			t.Errorf("serverstats render missing %q:\n%s", want, out)
		}
	}
}

func TestExtensionRenderDisabled(t *testing.T) {
	out := ExtensionSTDIOX(smallReport(t))
	if !strings.Contains(out, "disabled") {
		t.Errorf("baseline campaign should report the module disabled:\n%s", out)
	}
}

func TestCSVExport(t *testing.T) {
	out := CSV(smallReport(t))
	for _, want := range []string{
		"# figure3_transfer_cdf", "# figure4_request_cdf",
		"# figure5_request_cdf_large_jobs", "# figure6_classification",
		"# figure8_classification_stdio", "# figure7_10_domains",
		"# figure11_12_perf_mbps", "# figure9_interface_transfer_cdf",
		"bin,Alpine_read", "layer,dir,iface",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q", want)
		}
	}
	// Every figure-3 data row has 1 label + 4 series columns.
	lines := strings.Split(out, "\n")
	for i, l := range lines {
		if strings.HasPrefix(l, "1TB+") {
			if got := strings.Count(l, ","); got != 4 {
				t.Errorf("line %d: %d commas, want 4: %q", i, got, l)
			}
			break
		}
	}
}
