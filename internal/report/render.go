package report

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"iolayers/internal/analysis"
)

// SchemaVersion identifies the shape of the JSON report document. Bump it
// whenever a field is added, removed, or changes meaning so long-lived
// consumers (the ioserved query API, archived smoke-test goldens) can detect
// drift instead of silently misreading a response.
const SchemaVersion = 1

// Format selects the output encoding for Render.
type Format string

const (
	FormatText Format = "text"
	FormatJSON Format = "json"
	FormatCSV  Format = "csv"
)

// ParseFormat maps a user-supplied string (flag value, query parameter) to a
// Format. The empty string means FormatText.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "", "text":
		return FormatText, nil
	case "json":
		return FormatJSON, nil
	case "csv":
		return FormatCSV, nil
	default:
		return "", fmt.Errorf("unknown format %q (want text, json, or csv)", s)
	}
}

// Options controls what Render writes.
type Options struct {
	// Format is the output encoding; empty means FormatText.
	Format Format
	// Section restricts output to one named section ("table2", "figure7",
	// "users", ...). Empty or "all" renders every standard section.
	// FormatCSV does not support section selection.
	Section string
}

// ErrNoFaultData is returned when the "faults" section is requested from a
// campaign that ran without fault injection.
var ErrNoFaultData = errors.New("no fault data in this campaign (run with -faults)")

// sectionDef names one renderable slice of the report. The registry is
// ordered: the entries with everything=true, in registry order, are exactly
// the sections Everything concatenates.
type sectionDef struct {
	name       string
	render     func(*analysis.Report) string
	everything bool
}

var sectionDefs = []sectionDef{
	{"table2", func(r *analysis.Report) string { return Table2(r) }, true},
	{"table3", Table3, true},
	{"table4", Table4, true},
	{"table5", Table5, true},
	{"table6", Table6, true},
	{"figure3", Figure3, true},
	{"figure4", func(r *analysis.Report) string { return Figure4(r, false) }, true},
	{"figure5", func(r *analysis.Report) string { return Figure4(r, true) }, true},
	{"figure6", func(r *analysis.Report) string { return Figure6(r, false) }, true},
	{"figure7", Figure7, true},
	{"figure8", func(r *analysis.Report) string { return Figure6(r, true) }, true},
	{"figure9", Figure9, true},
	{"figure10", Figure10, true},
	{"figure11", Figure11, true},
	{"faults", Faults, false}, // appended to Everything only when non-empty
	{"extension", ExtensionSTDIOX, false},
	{"tuning", Tuning, false},
	{"temporal", Temporal, false},
	{"users", Users, false},
	{"predict", Predict, false},
}

// sectionAliases maps historical experiment names from iostudy onto
// canonical section names.
var sectionAliases = map[string]string{
	"figure12": "figure11",
	"e1":       "extension",
}

// CanonicalSection resolves aliases and case so callers can compare or cache
// by section name. Unknown names are returned unchanged.
func CanonicalSection(name string) string {
	n := strings.ToLower(strings.TrimSpace(name))
	if alias, ok := sectionAliases[n]; ok {
		return alias
	}
	return n
}

// SectionNames lists every renderable section in registry order.
func SectionNames() []string {
	names := make([]string, len(sectionDefs))
	for i, d := range sectionDefs {
		names[i] = d.name
	}
	return names
}

func findSection(name string) (sectionDef, bool) {
	n := CanonicalSection(name)
	for _, d := range sectionDefs {
		if d.name == n {
			return d, true
		}
	}
	return sectionDef{}, false
}

// Section renders one named section ("all" for everything). It is the single
// lookup behind iostudy experiments and ioserved's ?section= parameter.
func Section(r *analysis.Report, name string) (string, error) {
	if n := CanonicalSection(name); n == "" || n == "all" {
		return Everything(r), nil
	}
	d, ok := findSection(name)
	if !ok {
		return "", fmt.Errorf("unknown section %q", name)
	}
	s := d.render(r)
	if d.name == "faults" && s == "" {
		return "", ErrNoFaultData
	}
	return s, nil
}

// CanonicalNodeHours rounds an accumulated node-hour sum to microhour
// precision for serialization. Float summation is not associative, so the
// raw sum's trailing bits depend on how the campaign was partitioned
// across workers; the text tables round far coarser and never leak that,
// and JSON documents must not either — byte-identical reports at any
// -workers value is a stated guarantee.
func CanonicalNodeHours(h float64) float64 { return math.Round(h*1e6) / 1e6 }

// renderedSection is one entry of the JSON document's sections array.
type renderedSection struct {
	Name string `json:"name"`
	Text string `json:"text"`
}

// jsonSummary mirrors analysis.Summary with stable, explicit JSON names.
type jsonSummary struct {
	System    string  `json:"system"`
	Logs      int64   `json:"logs"`
	Jobs      int64   `json:"jobs"`
	Files     int64   `json:"files"`
	NodeHours float64 `json:"node_hours"`
}

// Document is the versioned JSON report envelope. Field order is fixed by
// the struct, and Render marshals with deterministic indentation, so the
// same report always yields the same bytes — a property ioserved's cache and
// the serve-smoke golden diff both rely on.
type Document struct {
	SchemaVersion int               `json:"schema_version"`
	System        string            `json:"system"`
	Section       string            `json:"section,omitempty"`
	Summary       jsonSummary       `json:"summary"`
	Sections      []renderedSection `json:"sections"`
}

// everythingSections renders the standard section list in Everything order,
// appending faults only when the campaign recorded fault data.
func everythingSections(r *analysis.Report) []renderedSection {
	var out []renderedSection
	for _, d := range sectionDefs {
		if !d.everything {
			continue
		}
		out = append(out, renderedSection{Name: d.name, Text: d.render(r)})
	}
	if s := Faults(r); s != "" {
		out = append(out, renderedSection{Name: "faults", Text: s})
	}
	return out
}

// BuildDocument assembles the versioned JSON document for a report, either
// the full standard set (section == "" or "all") or one named section.
func BuildDocument(r *analysis.Report, section string) (*Document, error) {
	doc := &Document{
		SchemaVersion: SchemaVersion,
		System:        r.Summary.System,
		Summary: jsonSummary{
			System:    r.Summary.System,
			Logs:      r.Summary.Logs,
			Jobs:      r.Summary.Jobs,
			Files:     r.Summary.Files,
			NodeHours: CanonicalNodeHours(r.Summary.NodeHours),
		},
	}
	n := CanonicalSection(section)
	if n == "" || n == "all" {
		doc.Sections = everythingSections(r)
		return doc, nil
	}
	text, err := Section(r, n)
	if err != nil {
		return nil, err
	}
	doc.Section = n
	doc.Sections = []renderedSection{{Name: n, Text: text}}
	return doc, nil
}

// Render writes the report to w in the requested format. Output is a pure
// function of (report, options): rendering never mutates the report, and
// identical inputs produce identical bytes.
func Render(w io.Writer, r *analysis.Report, opts Options) error {
	format := opts.Format
	if format == "" {
		format = FormatText
	}
	switch format {
	case FormatText:
		s, err := Section(r, opts.Section)
		if err != nil {
			return err
		}
		if !strings.HasSuffix(s, "\n") {
			s += "\n"
		}
		_, err = io.WriteString(w, s)
		return err
	case FormatJSON:
		doc, err := BuildDocument(r, opts.Section)
		if err != nil {
			return err
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		_, err = w.Write(data)
		return err
	case FormatCSV:
		if n := CanonicalSection(opts.Section); n != "" && n != "all" {
			return fmt.Errorf("csv format does not support section selection (got %q)", opts.Section)
		}
		_, err := io.WriteString(w, CSV(r))
		return err
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}

// RenderString is Render into a string, for call sites that still build
// output in memory.
func RenderString(r *analysis.Report, opts Options) (string, error) {
	var b strings.Builder
	if err := Render(&b, r, opts); err != nil {
		return "", err
	}
	return b.String(), nil
}
