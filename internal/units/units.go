// Package units defines byte-size constants and the size-bin taxonomies used
// throughout the study: the ten Darshan request-size histogram bins and the
// per-file transfer-size bins used by the paper's figures.
//
// Darshan's access-size histograms use binary units (1K = 1024), and so does
// this package; bin labels follow the Darshan counter names verbatim
// (e.g. "0_100", "100K_1M", "1G_PLUS").
package units

import "fmt"

// ByteSize is a number of bytes. It is signed so that arithmetic on
// differences is safe; real sizes are never negative.
type ByteSize int64

// Binary byte-size constants, matching Darshan's histogram edges.
const (
	Byte ByteSize = 1
	KiB           = 1024 * Byte
	MiB           = 1024 * KiB
	GiB           = 1024 * MiB
	TiB           = 1024 * GiB
	PiB           = 1024 * TiB
)

// String renders a ByteSize with a binary-unit suffix, e.g. "16.00MiB".
func (b ByteSize) String() string {
	switch {
	case b >= PiB:
		return fmt.Sprintf("%.2fPiB", float64(b)/float64(PiB))
	case b >= TiB:
		return fmt.Sprintf("%.2fTiB", float64(b)/float64(TiB))
	case b >= GiB:
		return fmt.Sprintf("%.2fGiB", float64(b)/float64(GiB))
	case b >= MiB:
		return fmt.Sprintf("%.2fMiB", float64(b)/float64(MiB))
	case b >= KiB:
		return fmt.Sprintf("%.2fKiB", float64(b)/float64(KiB))
	}
	return fmt.Sprintf("%dB", int64(b))
}

// RequestBin identifies one of the ten Darshan access-size histogram bins
// (POSIX_SIZE_READ_0_100 .. POSIX_SIZE_READ_1G_PLUS and the write
// equivalents). STDIO has no such histogram in Darshan; the bins apply to
// POSIX and MPI-IO only.
type RequestBin int

// The ten Darshan access-size bins, in increasing size order.
const (
	Bin0To100 RequestBin = iota // 0 – 100 bytes
	Bin100To1K
	Bin1KTo10K
	Bin10KTo100K
	Bin100KTo1M
	Bin1MTo4M
	Bin4MTo10M
	Bin10MTo100M
	Bin100MTo1G
	Bin1GPlus

	// NumRequestBins is the number of Darshan access-size bins.
	NumRequestBins = 10
)

var requestBinLabels = [NumRequestBins]string{
	"0_100", "100_1K", "1K_10K", "10K_100K", "100K_1M",
	"1M_4M", "4M_10M", "10M_100M", "100M_1G", "1G_PLUS",
}

// requestBinEdges holds the inclusive upper edge of each bin except the
// last, which is unbounded.
var requestBinEdges = [NumRequestBins - 1]ByteSize{
	100, KiB, 10 * KiB, 100 * KiB, MiB, 4 * MiB, 10 * MiB, 100 * MiB, GiB,
}

// String returns the Darshan counter-suffix label for the bin, e.g. "1K_10K".
func (b RequestBin) String() string {
	if b < 0 || b >= NumRequestBins {
		return fmt.Sprintf("RequestBin(%d)", int(b))
	}
	return requestBinLabels[b]
}

// UpperEdge returns the inclusive upper edge of the bin. The final bin is
// unbounded and reports the maximum ByteSize.
func (b RequestBin) UpperEdge() ByteSize {
	if b < 0 || b >= NumRequestBins {
		panic(fmt.Sprintf("units: invalid RequestBin(%d)", int(b)))
	}
	if b == Bin1GPlus {
		return ByteSize(1<<63 - 1)
	}
	return requestBinEdges[b]
}

// RequestBinFor returns the Darshan histogram bin that a single read or
// write request of the given size falls into. Sizes are clamped at zero.
func RequestBinFor(size ByteSize) RequestBin {
	if size < 0 {
		size = 0
	}
	for i, edge := range requestBinEdges {
		if size <= edge {
			return RequestBin(i)
		}
	}
	return Bin1GPlus
}

// RequestBins returns all bins in increasing order. The returned slice is
// freshly allocated and may be modified by the caller.
func RequestBins() []RequestBin {
	bins := make([]RequestBin, NumRequestBins)
	for i := range bins {
		bins[i] = RequestBin(i)
	}
	return bins
}

// TransferBin identifies a per-file total-transfer-size bin as used by the
// paper's Figures 3, 11, and 12 (x axes "0/100M, 1GB, 10GB, 100GB, 1TB,
// 1TB+"). The bin holds a file whose aggregate read (or write) volume over
// the life of one Darshan log falls in the range.
type TransferBin int

// Transfer-size bins in increasing order. The label names the upper edge,
// matching the paper's axis ticks.
const (
	TransferTo100M TransferBin = iota // (0, 100 MiB]
	TransferTo1G                      // (100 MiB, 1 GiB]
	TransferTo10G                     // (1 GiB, 10 GiB]
	TransferTo100G                    // (10 GiB, 100 GiB]
	TransferTo1T                      // (100 GiB, 1 TiB]
	TransferOver1T                    // (1 TiB, ∞)

	// NumTransferBins is the number of per-file transfer-size bins.
	NumTransferBins = 6
)

var transferBinLabels = [NumTransferBins]string{
	"100M", "1GB", "10GB", "100GB", "1TB", "1TB+",
}

var transferBinEdges = [NumTransferBins - 1]ByteSize{
	100 * MiB, GiB, 10 * GiB, 100 * GiB, TiB,
}

// String returns the paper's axis label for the bin, e.g. "100GB" or "1TB+".
func (b TransferBin) String() string {
	if b < 0 || b >= NumTransferBins {
		return fmt.Sprintf("TransferBin(%d)", int(b))
	}
	return transferBinLabels[b]
}

// UpperEdge returns the inclusive upper edge of the bin; the last bin is
// unbounded and reports the maximum ByteSize.
func (b TransferBin) UpperEdge() ByteSize {
	if b < 0 || b >= NumTransferBins {
		panic(fmt.Sprintf("units: invalid TransferBin(%d)", int(b)))
	}
	if b == TransferOver1T {
		return ByteSize(1<<63 - 1)
	}
	return transferBinEdges[b]
}

// TransferBinFor returns the transfer-size bin for a file's aggregate read
// or write volume. Sizes are clamped at zero.
func TransferBinFor(size ByteSize) TransferBin {
	if size < 0 {
		size = 0
	}
	for i, edge := range transferBinEdges {
		if size <= edge {
			return TransferBin(i)
		}
	}
	return TransferOver1T
}

// TransferBins returns all transfer bins in increasing order.
func TransferBins() []TransferBin {
	bins := make([]TransferBin, NumTransferBins)
	for i := range bins {
		bins[i] = TransferBin(i)
	}
	return bins
}
