package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestByteSizeString(t *testing.T) {
	cases := []struct {
		in   ByteSize
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{KiB, "1.00KiB"},
		{16 * MiB, "16.00MiB"},
		{GiB, "1.00GiB"},
		{3 * TiB / 2, "1.50TiB"},
		{250 * PiB, "250.00PiB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("ByteSize(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestRequestBinFor(t *testing.T) {
	cases := []struct {
		size ByteSize
		want RequestBin
	}{
		{0, Bin0To100},
		{1, Bin0To100},
		{100, Bin0To100},
		{101, Bin100To1K},
		{KiB, Bin100To1K},
		{KiB + 1, Bin1KTo10K},
		{10 * KiB, Bin1KTo10K},
		{100 * KiB, Bin10KTo100K},
		{MiB, Bin100KTo1M},
		{4 * MiB, Bin1MTo4M},
		{10 * MiB, Bin4MTo10M},
		{100 * MiB, Bin10MTo100M},
		{GiB, Bin100MTo1G},
		{GiB + 1, Bin1GPlus},
		{5 * TiB, Bin1GPlus},
		{-7, Bin0To100},
	}
	for _, c := range cases {
		if got := RequestBinFor(c.size); got != c.want {
			t.Errorf("RequestBinFor(%d) = %v, want %v", int64(c.size), got, c.want)
		}
	}
}

func TestRequestBinLabels(t *testing.T) {
	want := []string{
		"0_100", "100_1K", "1K_10K", "10K_100K", "100K_1M",
		"1M_4M", "4M_10M", "10M_100M", "100M_1G", "1G_PLUS",
	}
	bins := RequestBins()
	if len(bins) != NumRequestBins {
		t.Fatalf("RequestBins() returned %d bins, want %d", len(bins), NumRequestBins)
	}
	for i, b := range bins {
		if b.String() != want[i] {
			t.Errorf("bin %d label = %q, want %q", i, b.String(), want[i])
		}
	}
	if RequestBin(-1).String() != "RequestBin(-1)" {
		t.Errorf("invalid bin label = %q", RequestBin(-1).String())
	}
}

func TestRequestBinEdgesMonotonic(t *testing.T) {
	var prev ByteSize = -1
	for _, b := range RequestBins() {
		edge := b.UpperEdge()
		if edge <= prev {
			t.Errorf("bin %v edge %d not greater than previous %d", b, edge, prev)
		}
		prev = edge
	}
	if Bin1GPlus.UpperEdge() != ByteSize(math.MaxInt64) {
		t.Errorf("last bin edge = %d, want MaxInt64", Bin1GPlus.UpperEdge())
	}
}

func TestTransferBinFor(t *testing.T) {
	cases := []struct {
		size ByteSize
		want TransferBin
	}{
		{0, TransferTo100M},
		{100 * MiB, TransferTo100M},
		{100*MiB + 1, TransferTo1G},
		{GiB, TransferTo1G},
		{10 * GiB, TransferTo10G},
		{100 * GiB, TransferTo100G},
		{TiB, TransferTo1T},
		{TiB + 1, TransferOver1T},
		{90 * TiB, TransferOver1T},
	}
	for _, c := range cases {
		if got := TransferBinFor(c.size); got != c.want {
			t.Errorf("TransferBinFor(%d) = %v, want %v", int64(c.size), got, c.want)
		}
	}
}

func TestTransferBinLabels(t *testing.T) {
	want := []string{"100M", "1GB", "10GB", "100GB", "1TB", "1TB+"}
	for i, b := range TransferBins() {
		if b.String() != want[i] {
			t.Errorf("transfer bin %d label = %q, want %q", i, b.String(), want[i])
		}
	}
}

// Property: every size falls into exactly the bin whose range contains it —
// the bin's lower neighbor's edge is below the size and the bin's own edge
// is at or above it.
func TestRequestBinForProperty(t *testing.T) {
	f := func(raw uint32) bool {
		size := ByteSize(raw) * ByteSize(raw) // spread into the GiB range
		b := RequestBinFor(size)
		if size > b.UpperEdge() {
			return false
		}
		if b > 0 && size <= RequestBin(b-1).UpperEdge() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransferBinForProperty(t *testing.T) {
	f := func(raw uint64) bool {
		size := ByteSize(raw % uint64(4*TiB))
		b := TransferBinFor(size)
		if size > b.UpperEdge() {
			return false
		}
		if b > 0 && size <= TransferBin(b-1).UpperEdge() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvalidBinsPanic(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("RequestBin(-1).UpperEdge", func() { RequestBin(-1).UpperEdge() })
	mustPanic("RequestBin(10).UpperEdge", func() { RequestBin(10).UpperEdge() })
	mustPanic("TransferBin(-1).UpperEdge", func() { TransferBin(-1).UpperEdge() })
	mustPanic("TransferBin(6).UpperEdge", func() { TransferBin(6).UpperEdge() })
}
