// Package dist provides the deterministic, seedable random distributions the
// workload generator is built from: categorical (weighted) choice, lognormal
// and bounded-Pareto size distributions, and mixtures of samplers.
//
// Determinism contract: every generator in the study derives its randomness
// from a Stream(seed, index) PCG stream, so a campaign is bit-identical for
// a given (seed, scale) pair regardless of worker parallelism.
package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// Stream returns an independent deterministic random stream for the given
// campaign seed and element index (e.g. job number). Distinct indexes yield
// statistically independent streams.
func Stream(seed, index uint64) *rand.Rand {
	// Mix the index with a splitmix64-style finalizer so that consecutive
	// indexes do not produce correlated PCG increments.
	z := index + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return rand.New(rand.NewPCG(seed, z))
}

// Sampler produces one non-negative value per call from some distribution.
type Sampler interface {
	Sample(r *rand.Rand) float64
}

// SamplerFunc adapts a function to the Sampler interface.
type SamplerFunc func(r *rand.Rand) float64

// Sample calls f(r).
func (f SamplerFunc) Sample(r *rand.Rand) float64 { return f(r) }

// Constant is a Sampler that always returns the same value.
type Constant float64

// Sample returns the constant value.
func (c Constant) Sample(*rand.Rand) float64 { return float64(c) }

// Quantiler is implemented by distributions with a closed-form inverse CDF,
// enabling stratified (quota) sampling: feeding a low-discrepancy sequence
// of u values through Quantile yields samples whose running mean converges
// far faster than independent draws — essential for heavy-tailed structural
// counts in small synthetic campaigns.
type Quantiler interface {
	Quantile(u float64) float64
}

// LogNormal samples a lognormal distribution parameterized directly by its
// median and the multiplicative spread sigma (the standard deviation of the
// underlying normal in log space). Median must be positive and Sigma
// non-negative.
type LogNormal struct {
	Median float64
	Sigma  float64
}

// Sample draws from the lognormal.
func (l LogNormal) Sample(r *rand.Rand) float64 {
	if l.Median <= 0 {
		panic(fmt.Sprintf("dist: LogNormal median %v must be positive", l.Median))
	}
	return l.Median * math.Exp(l.Sigma*r.NormFloat64())
}

// Quantile returns the value at cumulative probability u ∈ (0,1).
func (l LogNormal) Quantile(u float64) float64 {
	if l.Median <= 0 {
		panic(fmt.Sprintf("dist: LogNormal median %v must be positive", l.Median))
	}
	return l.Median * math.Exp(l.Sigma*NormQuantile(u))
}

// NormQuantile is the standard normal inverse CDF Φ⁻¹(u), computed with
// Acklam's rational approximation (relative error below 1.15e-9 across the
// open unit interval). Inputs at or outside {0,1} are clamped to ±8σ.
func NormQuantile(u float64) float64 {
	const tiny = 1e-300
	if u <= tiny {
		return -8
	}
	if u >= 1-1e-16 {
		return 8
	}
	// Coefficients from Acklam (2003).
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow = 0.02425
	switch {
	case u < plow:
		q := math.Sqrt(-2 * math.Log(u))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case u <= 1-plow:
		q := u - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-u))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// BoundedPareto samples a Pareto distribution with shape Alpha truncated to
// [Lo, Hi] by inverse-CDF sampling. It models heavy-tailed file sizes such
// as the paper's >1 TB outliers. Requires 0 < Lo < Hi and Alpha > 0.
type BoundedPareto struct {
	Alpha  float64
	Lo, Hi float64
}

// Sample draws from the bounded Pareto.
func (p BoundedPareto) Sample(r *rand.Rand) float64 {
	if !(p.Lo > 0 && p.Hi > p.Lo && p.Alpha > 0) {
		panic(fmt.Sprintf("dist: invalid BoundedPareto %+v", p))
	}
	u := r.Float64()
	la := math.Pow(p.Lo, p.Alpha)
	ha := math.Pow(p.Hi, p.Alpha)
	// Inverse CDF of the truncated Pareto.
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/p.Alpha)
	// Clamp against floating-point drift at the boundaries.
	return math.Min(math.Max(x, p.Lo), p.Hi)
}

// UniformRange samples uniformly from [Lo, Hi).
type UniformRange struct {
	Lo, Hi float64
}

// Sample draws from the range.
func (u UniformRange) Sample(r *rand.Rand) float64 {
	if u.Hi < u.Lo {
		panic(fmt.Sprintf("dist: invalid UniformRange [%v,%v)", u.Lo, u.Hi))
	}
	return u.Lo + (u.Hi-u.Lo)*r.Float64()
}

// Component is one weighted member of a Mixture.
type Component struct {
	Weight  float64
	Sampler Sampler
}

// Mixture samples from one of its components, chosen with probability
// proportional to weight. Construct with NewMixture.
type Mixture struct {
	components []Component
	cum        []float64 // cumulative normalized weights
}

// NewMixture builds a mixture from weighted components. Weights must be
// non-negative with a positive sum.
func NewMixture(components ...Component) *Mixture {
	if len(components) == 0 {
		panic("dist: NewMixture needs at least one component")
	}
	var total float64
	for _, c := range components {
		if c.Weight < 0 || math.IsNaN(c.Weight) {
			panic(fmt.Sprintf("dist: negative mixture weight %v", c.Weight))
		}
		if c.Sampler == nil {
			panic("dist: nil sampler in mixture")
		}
		total += c.Weight
	}
	if total <= 0 {
		panic("dist: mixture weights sum to zero")
	}
	m := &Mixture{
		components: append([]Component(nil), components...),
		cum:        make([]float64, len(components)),
	}
	var running float64
	for i, c := range components {
		running += c.Weight / total
		m.cum[i] = running
	}
	m.cum[len(m.cum)-1] = 1 // guard against rounding
	return m
}

// Sample draws a component by weight, then samples it.
func (m *Mixture) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	i := sort.SearchFloat64s(m.cum, u)
	if i >= len(m.components) {
		i = len(m.components) - 1
	}
	return m.components[i].Sampler.Sample(r)
}

// Categorical draws values of type T with fixed weights. Construct with
// NewCategorical; the zero value is unusable.
type Categorical[T any] struct {
	values []T
	cum    []float64
}

// Weighted pairs a value with its selection weight.
type Weighted[T any] struct {
	Value  T
	Weight float64
}

// NewCategorical builds a weighted categorical distribution. Weights must be
// non-negative with a positive sum.
func NewCategorical[T any](choices ...Weighted[T]) *Categorical[T] {
	if len(choices) == 0 {
		panic("dist: NewCategorical needs at least one choice")
	}
	var total float64
	for _, c := range choices {
		if c.Weight < 0 || math.IsNaN(c.Weight) {
			panic(fmt.Sprintf("dist: negative categorical weight %v", c.Weight))
		}
		total += c.Weight
	}
	if total <= 0 {
		panic("dist: categorical weights sum to zero")
	}
	cat := &Categorical[T]{
		values: make([]T, len(choices)),
		cum:    make([]float64, len(choices)),
	}
	var running float64
	for i, c := range choices {
		cat.values[i] = c.Value
		running += c.Weight / total
		cat.cum[i] = running
	}
	cat.cum[len(cat.cum)-1] = 1
	return cat
}

// Sample draws one value according to the weights.
func (c *Categorical[T]) Sample(r *rand.Rand) T {
	return c.SampleQuantile(r.Float64())
}

// SampleQuantile returns the value at cumulative position u ∈ [0,1). With a
// low-discrepancy u sequence this gives quota sampling: category counts stay
// proportional to their weights at any sample size, which matters when a
// rare category carries a large share of downstream mass.
func (c *Categorical[T]) SampleQuantile(u float64) T {
	i := sort.SearchFloat64s(c.cum, u)
	if i >= len(c.values) {
		i = len(c.values) - 1
	}
	return c.values[i]
}

// Values returns the distinct values in declaration order. The slice is
// freshly allocated.
func (c *Categorical[T]) Values() []T {
	return append([]T(nil), c.values...)
}

// Bernoulli returns true with probability p. Probabilities outside [0,1]
// are clamped.
func Bernoulli(r *rand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}
