package dist

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestStreamDeterminism(t *testing.T) {
	a := Stream(42, 7)
	b := Stream(42, 7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical (seed,index) diverged at draw %d", i)
		}
	}
}

func TestStreamIndependence(t *testing.T) {
	a := Stream(42, 1)
	b := Stream(42, 2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams with different indexes collided %d/64 times", same)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := Stream(1, 1)
	ln := LogNormal{Median: 1000, Sigma: 1.5}
	n := 20000
	above := 0
	for i := 0; i < n; i++ {
		if ln.Sample(r) > 1000 {
			above++
		}
	}
	frac := float64(above) / float64(n)
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("fraction above median = %v, want ≈0.5", frac)
	}
}

func TestLogNormalZeroSigmaIsConstant(t *testing.T) {
	r := Stream(1, 2)
	ln := LogNormal{Median: 77, Sigma: 0}
	for i := 0; i < 10; i++ {
		if got := ln.Sample(r); got != 77 {
			t.Fatalf("sigma=0 sample = %v, want 77", got)
		}
	}
}

func TestLogNormalPanicsOnBadMedian(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive median")
		}
	}()
	LogNormal{Median: 0, Sigma: 1}.Sample(Stream(1, 3))
}

func TestBoundedParetoWithinBounds(t *testing.T) {
	r := Stream(2, 1)
	p := BoundedPareto{Alpha: 1.1, Lo: 1e9, Hi: 1e13}
	for i := 0; i < 5000; i++ {
		v := p.Sample(r)
		if v < p.Lo || v > p.Hi {
			t.Fatalf("sample %v outside [%v,%v]", v, p.Lo, p.Hi)
		}
	}
}

func TestBoundedParetoIsHeavyTailed(t *testing.T) {
	r := Stream(2, 2)
	p := BoundedPareto{Alpha: 0.8, Lo: 1, Hi: 1e6}
	small, large := 0, 0
	for i := 0; i < 20000; i++ {
		v := p.Sample(r)
		if v < 10 {
			small++
		}
		if v > 1e3 {
			large++
		}
	}
	// P(X < 10) ≈ 0.84 and P(X > 1e3) ≈ 4e-3 for these parameters, so both
	// ends should be populated with ample slack at n = 20000.
	if small < 10000 || large < 10 {
		t.Errorf("expected mass at both ends: small=%d large=%d", small, large)
	}
	if small <= large {
		t.Errorf("Pareto should favor small values: small=%d large=%d", small, large)
	}
}

func TestBoundedParetoPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for Lo >= Hi")
		}
	}()
	BoundedPareto{Alpha: 1, Lo: 10, Hi: 5}.Sample(Stream(1, 4))
}

func TestUniformRange(t *testing.T) {
	r := Stream(3, 1)
	u := UniformRange{Lo: 5, Hi: 6}
	for i := 0; i < 1000; i++ {
		v := u.Sample(r)
		if v < 5 || v >= 6 {
			t.Fatalf("uniform sample %v outside [5,6)", v)
		}
	}
}

func TestMixtureWeights(t *testing.T) {
	r := Stream(4, 1)
	m := NewMixture(
		Component{Weight: 3, Sampler: Constant(1)},
		Component{Weight: 1, Sampler: Constant(2)},
	)
	n := 40000
	ones := 0
	for i := 0; i < n; i++ {
		if m.Sample(r) == 1 {
			ones++
		}
	}
	frac := float64(ones) / float64(n)
	if math.Abs(frac-0.75) > 0.02 {
		t.Errorf("component-1 fraction = %v, want ≈0.75", frac)
	}
}

func TestMixtureSingleComponent(t *testing.T) {
	m := NewMixture(Component{Weight: 1, Sampler: Constant(9)})
	if got := m.Sample(Stream(4, 2)); got != 9 {
		t.Errorf("single-component mixture sample = %v, want 9", got)
	}
}

func TestMixturePanics(t *testing.T) {
	cases := map[string]func(){
		"empty":       func() { NewMixture() },
		"negative":    func() { NewMixture(Component{Weight: -1, Sampler: Constant(0)}) },
		"nil sampler": func() { NewMixture(Component{Weight: 1, Sampler: nil}) },
		"zero total":  func() { NewMixture(Component{Weight: 0, Sampler: Constant(0)}) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCategoricalWeights(t *testing.T) {
	r := Stream(5, 1)
	c := NewCategorical(
		Weighted[string]{Value: "posix", Weight: 50},
		Weighted[string]{Value: "stdio", Weight: 40},
		Weighted[string]{Value: "mpiio", Weight: 10},
	)
	n := 50000
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		counts[c.Sample(r)]++
	}
	checks := map[string]float64{"posix": 0.5, "stdio": 0.4, "mpiio": 0.1}
	for v, want := range checks {
		frac := float64(counts[v]) / float64(n)
		if math.Abs(frac-want) > 0.02 {
			t.Errorf("%s fraction = %v, want ≈%v", v, frac, want)
		}
	}
}

func TestCategoricalZeroWeightNeverDrawn(t *testing.T) {
	r := Stream(5, 2)
	c := NewCategorical(
		Weighted[int]{Value: 1, Weight: 1},
		Weighted[int]{Value: 2, Weight: 0},
	)
	for i := 0; i < 10000; i++ {
		if c.Sample(r) == 2 {
			t.Fatal("zero-weight value drawn")
		}
	}
}

func TestCategoricalValues(t *testing.T) {
	c := NewCategorical(
		Weighted[int]{Value: 7, Weight: 1},
		Weighted[int]{Value: 8, Weight: 1},
	)
	vals := c.Values()
	if len(vals) != 2 || vals[0] != 7 || vals[1] != 8 {
		t.Errorf("Values() = %v", vals)
	}
	vals[0] = 99 // must not affect internals
	if c.Values()[0] != 7 {
		t.Error("Values() aliases internal state")
	}
}

func TestBernoulli(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 9))
	if Bernoulli(r, 0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !Bernoulli(r, 1) {
		t.Error("Bernoulli(1) returned false")
	}
	if Bernoulli(r, -3) {
		t.Error("Bernoulli(-3) returned true")
	}
	if !Bernoulli(r, 2) {
		t.Error("Bernoulli(2) returned false")
	}
	n, hits := 30000, 0
	for i := 0; i < n; i++ {
		if Bernoulli(r, 0.3) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if math.Abs(frac-0.3) > 0.02 {
		t.Errorf("Bernoulli(0.3) rate = %v", frac)
	}
}

func TestNormQuantile(t *testing.T) {
	cases := []struct{ u, want float64 }{
		{0.5, 0},
		{0.8413447, 1},  // Φ(1)
		{0.1586553, -1}, // Φ(−1)
		{0.9772499, 2},
		{0.0013499, -3},
	}
	for _, c := range cases {
		if got := NormQuantile(c.u); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("NormQuantile(%v) = %v, want %v", c.u, got, c.want)
		}
	}
	if got := NormQuantile(0); got != -8 {
		t.Errorf("NormQuantile(0) = %v, want clamp at -8", got)
	}
	if got := NormQuantile(1); got != 8 {
		t.Errorf("NormQuantile(1) = %v, want clamp at 8", got)
	}
}

func TestNormQuantileMonotone(t *testing.T) {
	prev := math.Inf(-1)
	for u := 0.001; u < 1; u += 0.001 {
		v := NormQuantile(u)
		if v < prev {
			t.Fatalf("NormQuantile not monotone at u=%v", u)
		}
		prev = v
	}
}

func TestLogNormalQuantile(t *testing.T) {
	ln := LogNormal{Median: 100, Sigma: 1.5}
	if got := ln.Quantile(0.5); math.Abs(got-100) > 1e-6 {
		t.Errorf("median quantile = %v", got)
	}
	// Q(Φ(1)) = median·e^σ.
	if got := ln.Quantile(0.8413447); math.Abs(got-100*math.Exp(1.5)) > 0.1 {
		t.Errorf("1σ quantile = %v, want %v", got, 100*math.Exp(1.5))
	}
	if ln.Quantile(0.2) >= ln.Quantile(0.8) {
		t.Error("quantiles not monotone")
	}
}

func TestLogNormalQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive median")
		}
	}()
	LogNormal{Median: -1, Sigma: 1}.Quantile(0.5)
}

func TestCategoricalSampleQuantile(t *testing.T) {
	c := NewCategorical(
		Weighted[string]{Value: "a", Weight: 0.25},
		Weighted[string]{Value: "b", Weight: 0.50},
		Weighted[string]{Value: "c", Weight: 0.25},
	)
	cases := []struct {
		u    float64
		want string
	}{
		{0.0, "a"},
		{0.24, "a"},
		{0.26, "b"},
		{0.74, "b"},
		{0.76, "c"},
		{0.999, "c"},
	}
	for _, cse := range cases {
		if got := c.SampleQuantile(cse.u); got != cse.want {
			t.Errorf("SampleQuantile(%v) = %q, want %q", cse.u, got, cse.want)
		}
	}
}

// Quota property: feeding a Weyl sequence through SampleQuantile yields
// near-exact category proportions at any prefix length.
func TestSampleQuantileQuotaProperty(t *testing.T) {
	c := NewCategorical(
		Weighted[int]{Value: 0, Weight: 0.99},
		Weighted[int]{Value: 1, Weight: 0.01},
	)
	const phi = 0.6180339887498949
	for _, n := range []int{100, 500, 2000} {
		rare := 0
		for i := 0; i < n; i++ {
			u := (float64(i) + 0.5) * phi
			u -= math.Floor(u)
			if c.SampleQuantile(u) == 1 {
				rare++
			}
		}
		want := float64(n) * 0.01
		if math.Abs(float64(rare)-want) > 2 {
			t.Errorf("n=%d: rare count %d, want ≈%.1f (quota sampling)", n, rare, want)
		}
	}
}

func TestSamplerFunc(t *testing.T) {
	s := SamplerFunc(func(*rand.Rand) float64 { return 4.5 })
	if got := s.Sample(nil); got != 4.5 {
		t.Errorf("SamplerFunc sample = %v", got)
	}
}
