// Command ioserved is the long-running query side of the pipeline: it
// ingests Darshan campaigns into named in-memory datasets and answers
// report queries over HTTP, so a year of production logs is analyzed once
// and interrogated many times.
//
// Usage:
//
//	ioserved -listen :8080 -ingest /path/to/logs [-dataset default]
//	         [-system summit] [-max-inflight 64] [-cache-bytes 33554432]
//	         [-lake /var/lib/ioserved] [-compact-every 16]
//	         [-query-timeout 30s]
//
// Endpoints (all JSON bodies carry an explicit schema_version):
//
//	GET  /v1                        — machine-readable route index: every
//	                                  endpoint with methods, accepted
//	                                  query params, and document schema
//	                                  version (see docs/api.md)
//	GET  /v1/datasets               — list datasets with campaign summaries
//	GET  /v1/report/{dataset}       — the full report; ?section=table2
//	                                  restricts to one section, ?format=
//	                                  selects text (default), json, or csv.
//	                                  The json body is byte-identical to
//	                                  `ioanalyze -format json` over the
//	                                  same logs.
//	GET  /v1/compare/{a}/{b}        — two datasets' summaries side by side
//	GET  /v1/predict/{dataset}      — the predictive-analytics document:
//	                                  monthly series, burst forecast with
//	                                  confidence band, placement hints,
//	                                  and the iosim replay of the advice
//	POST /v1/ingest                 — {"dataset","system","source"}: fold
//	                                  more logs in; readers keep the old
//	                                  generation until the new one lands
//	GET  /healthz                   — liveness: 200 while the process runs
//	GET  /readyz                    — readiness: 503 during lake replay,
//	                                  boot ingests, compaction, and drain
//	GET  /metrics, /metrics.json
//
// Every non-200 carries the structured error envelope
// {"error":{"code","message","retry_after_ms"}} with a stable code from
// the closed taxonomy in docs/api.md; unknown query parameters are
// rejected (400 bad_param) rather than ignored.
//
// Rendered reports are cached (LRU, byte-bounded) keyed by dataset
// generation, so repeated queries cost a map lookup and re-ingestion
// invalidates naturally. Query concurrency is bounded; excess load is
// shed immediately with 429 + Retry-After rather than queued. Each query
// also gets a server-side deadline (-query-timeout): a query that cannot
// render in time gets 503 and releases its concurrency slot instead of
// wedging it.
//
// -ingest may repeat; each path (directory, .dgar archive, or single
// .darshan log) folds into the -dataset dataset before the server reports
// ready. -fixture name:logs[:seed] (repeatable) synthesizes a
// deterministic corpus (serve.WriteFixture — a pure function of system,
// count, and seed) and ingests it at boot: replicas started with the
// same spec publish byte-identical datasets, which is what the load-test
// harness's divergence check leans on. With -addr-file the bound address
// is written to the given path once the server is ready — for scripts
// that start the service on ":0".
//
// With -lake the datasets are durable: every ingest commits an immutable
// segment plus an fsync'd journal record under the lake directory before
// it becomes visible, and a restart with the same -lake replays the
// journal and republishes every dataset at its last committed generation
// — byte-identical reports, no re-ingest, even after a kill -9. The
// listener binds before the replay: /healthz answers immediately while
// /readyz holds 503 until recovery completes, so supervisors can tell
// "starting" from "dead". -compact-every bounds recovery cost by folding
// a dataset's segments into one once that many accumulate (negative
// disables compaction).
//
// On SIGINT/SIGTERM the service flips /readyz to not-ready, stops
// accepting connections, drains in-flight requests (up to
// -drain-timeout), and exits 0 — or exits 1 with "drain incomplete" when
// requests were still in flight at the deadline.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"iolayers/internal/cli"
	"iolayers/internal/core"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/obsv"
	"iolayers/internal/serve"
)

func main() {
	var ingests []string
	var (
		listen      = flag.String("listen", ":8080", "address to serve the query API on")
		dataset     = flag.String("dataset", "default", "dataset name for -ingest sources")
		system      = flag.String("system", "summit", "system profile for -ingest sources: summit or cori")
		addrFile    = flag.String("addr-file", "", "write the bound listen address to this file once ready")
		maxInFlight = flag.Int("max-inflight", serve.DefaultMaxInFlight, "concurrent query bound; excess requests get 429")
		cacheBytes  = flag.Int64("cache-bytes", serve.DefaultCacheBytes, "rendered-report cache size in bytes")
		queryTO     = flag.Duration("query-timeout", serve.DefaultQueryTimeout, "server-side deadline per query; late queries get 503 (<0 disables)")
		drain       = flag.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for in-flight requests")
		lakeDir     = flag.String("lake", "", "durable dataset lake directory: commit every ingest, recover datasets on boot")
		compactEach = flag.Int("compact-every", serve.DefaultCompactEvery, "fold a dataset's lake segments into one after this many commits (<0 disables)")
	)
	flag.Func("ingest", "ingest this source (dir, .dgar, or .darshan; repeatable) before serving", func(v string) error {
		ingests = append(ingests, v)
		return nil
	})
	var fixtures []serve.FixtureSpec
	flag.Func("fixture", "synthesize a deterministic dataset at boot: name:logs[:seed] (repeatable; for load testing)", func(v string) error {
		f, err := serve.ParseFixtureSpec(v)
		if err != nil {
			return err
		}
		fixtures = append(fixtures, f)
		return nil
	})
	var common cli.CommonFlags
	common.Register(flag.CommandLine, cli.FlagDebug|cli.FlagWorkers)
	flag.Parse()

	// The service is always instrumented — metrics are part of the API
	// surface (/metrics), not an opt-in debug aid.
	metrics := obsv.New()
	stopDebug := cli.StartDebug("ioserved", common.DebugAddr, metrics)
	defer stopDebug()

	sys := systems.ByName(*system)
	if sys == nil {
		fmt.Fprintf(os.Stderr, "ioserved: unknown system %q\n", *system)
		os.Exit(2)
	}

	ctx, cancel := cli.SignalContext("ioserved")
	defer cancel()

	// Bind and serve before any recovery or boot ingest: liveness is
	// answerable the moment the process is up, while /readyz holds 503
	// until the datasets are actually queryable.
	store := serve.NewStore()
	var lake *serve.Lake
	if *lakeDir != "" {
		var err error
		lake, err = serve.OpenLake(serve.LakeConfig{
			Dir: *lakeDir, CompactEvery: *compactEach, Metrics: metrics,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ioserved: opening lake: %v\n", err)
			os.Exit(1)
		}
		defer lake.Close()
		store = serve.NewStoreAttached(lake)
	}

	server := serve.New(serve.Config{
		Store:         store,
		Metrics:       metrics,
		MaxInFlight:   *maxInFlight,
		CacheBytes:    *cacheBytes,
		QueryTimeout:  *queryTO,
		IngestWorkers: common.Workers,
	})
	server.SetReady(false)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ioserved:", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: server.Handler(), ReadHeaderTimeout: 5 * time.Second}
	svc := cli.StartHTTP("ioserved", srv, ln, os.Stderr)

	if lake != nil {
		if err := store.RecoverLake(); err != nil {
			fmt.Fprintf(os.Stderr, "ioserved: recovering lake: %v\n", err)
			os.Exit(1)
		}
		for _, snap := range store.List() {
			fmt.Fprintf(os.Stderr, "ioserved: recovered dataset %q gen %d (%d logs) from %s\n",
				snap.Name, snap.Gen, snap.Report.Summary.Logs, *lakeDir)
		}
	}
	// Fixture datasets first: a deterministic corpus is synthesized into a
	// scratch directory and folded in like any other boot ingest. Replicas
	// booted with the same -fixture spec publish byte-identical datasets —
	// the load-test harness's ground truth.
	for _, fx := range fixtures {
		dir, err := os.MkdirTemp("", "ioserved-fixture-")
		if err != nil {
			fmt.Fprintf(os.Stderr, "ioserved: fixture scratch dir: %v\n", err)
			os.Exit(1)
		}
		err = serve.WriteFixture(dir, sys, fx.Logs, fx.Seed)
		if err == nil {
			var snap *serve.Snapshot
			var res core.IngestResult
			snap, res, err = store.Ingest(ctx, fx.Name, sys, dir, core.IngestOptions{
				Workers: common.Workers, Metrics: metrics,
			})
			if err == nil {
				fmt.Fprintf(os.Stderr, "ioserved: fixture dataset %q gen %d — %d deterministic logs (seed %d)\n",
					snap.Name, snap.Gen, res.Parsed, fx.Seed)
			}
		}
		os.RemoveAll(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ioserved: fixture %q: %v\n", fx.Name, err)
			os.Exit(1)
		}
	}
	for _, src := range ingests {
		snap, res, err := store.Ingest(ctx, *dataset, sys, src, core.IngestOptions{
			Workers: common.Workers, Metrics: metrics,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ioserved: ingesting %s: %v\n", src, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ioserved: dataset %q gen %d — %d logs parsed (%d unreadable) from %s\n",
			snap.Name, snap.Gen, res.Parsed, res.Failed, src)
	}
	server.SetReady(true)

	// The addr-file is the ready signal scripts wait on: written only once
	// every recovered and boot-ingested dataset is queryable.
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ioserved:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "ioserved: serving on http://%s (%d datasets)\n",
		ln.Addr(), len(store.List()))

	if code := svc.WaitAndDrain(ctx, *drain, func() { server.SetReady(false) }); code != 0 {
		os.Exit(code)
	}
	cli.WriteMetrics("ioserved", common.MetricsOut, metrics)
	fmt.Fprintln(os.Stderr, "ioserved: drained, bye")
}
