// Command ioanalyze parses a directory of Darshan-format logs (as written
// by iogen or any tool targeting the logfmt format) and prints the study's
// tables and figures for them — the darshan-util half of the pipeline on
// its own.
//
// Usage:
//
//	ioanalyze -dir /path/to/logs [-system summit]
//	ioanalyze -archive campaign.dgar [-system summit]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"iolayers/internal/analysis"
	"iolayers/internal/darshan/logfmt"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/report"
)

func main() {
	var (
		system  = flag.String("system", "summit", "system the logs came from: summit or cori")
		dir     = flag.String("dir", "", "directory of .darshan logs")
		archive = flag.String("archive", "", "campaign archive (.dgar) to analyze instead of a directory")
	)
	flag.Parse()
	if *dir == "" && *archive == "" {
		fmt.Fprintln(os.Stderr, "ioanalyze: -dir or -archive is required")
		os.Exit(2)
	}
	sys := systems.ByName(*system)
	if sys == nil {
		fmt.Fprintf(os.Stderr, "ioanalyze: unknown system %q\n", *system)
		os.Exit(2)
	}

	agg := analysis.NewAggregator(sys)
	parsed, failed := 0, 0
	source := *dir
	if *archive != "" {
		source = *archive
		logs, err := logfmt.ReadArchiveFile(*archive)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ioanalyze:", err)
			os.Exit(1)
		}
		for _, log := range logs {
			agg.AddLog(log)
			parsed++
		}
	} else {
		paths, err := filepath.Glob(filepath.Join(*dir, "*.darshan"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "ioanalyze:", err)
			os.Exit(1)
		}
		if len(paths) == 0 {
			fmt.Fprintf(os.Stderr, "ioanalyze: no .darshan logs in %s\n", *dir)
			os.Exit(1)
		}
		for _, p := range paths {
			log, err := logfmt.ReadFile(p)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ioanalyze: skipping %s: %v\n", p, err)
				failed++
				continue
			}
			agg.AddLog(log)
			parsed++
		}
	}
	fmt.Printf("ioanalyze: parsed %d logs (%d unreadable) from %s\n\n", parsed, failed, source)
	fmt.Println(report.Everything(agg.Report()))
}
