// Command ioanalyze parses a directory of Darshan-format logs (as written
// by iogen or any tool targeting the logfmt format) or a campaign archive
// and prints the study's tables and figures for them — the darshan-util
// half of the pipeline on its own.
//
// Ingestion is parallel and streaming: logs fan out to a worker pool of
// private aggregators that merge at the end (deterministically — the same
// corpus renders the same report at any -workers value), and archives are
// consumed one entry at a time, so memory stays bounded regardless of
// archive size.
//
// Robustness: logs are treated as untrusted input and decoded under hard
// limits (a crafted or damaged log cannot force unbounded allocation).
// With -quarantine, undecodable logs are moved aside into the given
// directory with a MANIFEST.tsv line each instead of merely being skipped.
// With -checkpoint, progress persists every -checkpoint-every logs and an
// interrupted pass (SIGINT/SIGTERM, crash) continues with -resume,
// producing the identical report. SIGINT flushes a valid partial report.
//
// Usage:
//
//	ioanalyze -dir /path/to/logs [-system summit] [-workers 0]
//	ioanalyze -archive campaign.dgar [-system summit] [-workers 0]
//	ioanalyze -resume pass.ckpt [-checkpoint pass.ckpt]
//
// Exit status: 0 on success (even with some unreadable logs, which are
// reported on stderr); 1 when nothing could be parsed at all or the source
// is unreadable; 2 on usage errors; 130 when interrupted.
package main

import (
	"flag"
	"fmt"
	"os"

	"iolayers/internal/analysis"
	"iolayers/internal/cli"
	"iolayers/internal/core"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/obsv"
	"iolayers/internal/report"
)

func main() {
	var (
		system     = flag.String("system", "summit", "system the logs came from: summit or cori")
		dir        = flag.String("dir", "", "directory of .darshan logs")
		archive    = flag.String("archive", "", "campaign archive (.dgar) to analyze instead of a directory")
		workers    = flag.Int("workers", 0, "ingestion worker pool size (0 = GOMAXPROCS)")
		quarantine = flag.String("quarantine", "", "move undecodable logs into this directory (with a MANIFEST.tsv)")
		ckptPath   = flag.String("checkpoint", "", "persist resumable progress to this file while ingesting")
		ckptEvery  = flag.Int("checkpoint-every", 0, "logs between checkpoint writes (0 = default)")
		resumePath = flag.String("resume", "", "resume an interrupted pass from this checkpoint file")
		debugAddr  = flag.String("debug-addr", "", "serve pprof, expvar, and /metrics on this address while running")
		metricsOut = flag.String("metrics", "", "write a metrics snapshot (JSON) to this file and print the observability section")
	)
	flag.Parse()

	var metrics *obsv.Registry
	if *debugAddr != "" || *metricsOut != "" {
		metrics = obsv.New()
	}
	stopDebug := cli.StartDebug("ioanalyze", *debugAddr, metrics)
	defer stopDebug()

	opts := core.IngestOptions{
		Workers:         *workers,
		QuarantineDir:   *quarantine,
		CheckpointPath:  *ckptPath,
		CheckpointEvery: *ckptEvery,
		Metrics:         metrics,
	}
	if *resumePath != "" {
		ck, err := core.LoadIngestCheckpoint(*resumePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ioanalyze:", err)
			os.Exit(2)
		}
		opts.Resume = ck
		// The checkpoint pins the source and system; flags must not
		// silently redirect a resumed pass.
		*system = ck.System
		if ck.Mode == "archive" {
			*archive, *dir = ck.Source, ""
		} else {
			*dir, *archive = ck.Source, ""
		}
		if opts.CheckpointPath == "" {
			opts.CheckpointPath = *resumePath
		}
		if opts.LargeJobProcs == 0 {
			opts.LargeJobProcs = ck.LargeJobProcs
		}
		fmt.Fprintf(os.Stderr, "ioanalyze: resuming %s pass over %s (%d logs done)\n",
			ck.Mode, ck.Source, ck.EntriesDone)
	}
	if *dir == "" && *archive == "" {
		fmt.Fprintln(os.Stderr, "ioanalyze: -dir, -archive, or -resume is required")
		os.Exit(2)
	}
	sys := systems.ByName(*system)
	if sys == nil {
		fmt.Fprintf(os.Stderr, "ioanalyze: unknown system %q\n", *system)
		os.Exit(2)
	}

	ctx, cancel := cli.SignalContext("ioanalyze")
	defer cancel()

	var (
		rep    *analysis.Report
		res    core.IngestResult
		err    error
		source string
	)
	if *archive != "" {
		source = *archive
		rep, res, err = core.IngestArchive(ctx, sys, *archive, opts)
	} else {
		source = *dir
		rep, res, err = core.IngestDir(ctx, sys, *dir, opts)
		if err == nil && res.Parsed == 0 && res.Failed == 0 {
			fmt.Fprintf(os.Stderr, "ioanalyze: no .darshan logs in %s\n", source)
			os.Exit(1)
		}
	}

	for _, f := range res.Failures {
		fmt.Fprintf(os.Stderr, "ioanalyze: skipping %s: %v\n", f.Source, f.Err)
	}
	if extra := res.Failed - len(res.Failures); extra > 0 {
		fmt.Fprintf(os.Stderr, "ioanalyze: ... and %d more unreadable logs\n", extra)
	}
	if res.Quarantined > 0 {
		fmt.Fprintf(os.Stderr, "ioanalyze: quarantined %d logs into %s\n", res.Quarantined, *quarantine)
	}
	interrupted := cli.Interrupted(err)
	if err != nil && !interrupted {
		// Framing-level damage (or an unreadable source): report it, and
		// salvage whatever was ingested before the damage point.
		fmt.Fprintln(os.Stderr, "ioanalyze:", err)
		if res.Parsed == 0 {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ioanalyze: continuing with the %d logs before the damage\n", res.Parsed)
	}
	if res.Parsed == 0 && !interrupted {
		fmt.Fprintf(os.Stderr, "ioanalyze: every log in %s was unreadable (%d failures)\n",
			source, res.Failed)
		os.Exit(1)
	}

	if interrupted {
		fmt.Fprintf(os.Stderr, "ioanalyze: interrupted after %d logs — partial report follows\n", res.Parsed)
		if opts.CheckpointPath != "" {
			fmt.Fprintf(os.Stderr, "ioanalyze: resume with: ioanalyze -resume %s\n", opts.CheckpointPath)
		}
	}
	fmt.Printf("ioanalyze: parsed %d logs (%d unreadable) from %s\n\n",
		res.Parsed, res.Failed, source)
	if rep != nil {
		fmt.Println(report.Everything(rep))
	}
	if metrics != nil {
		fmt.Println(report.Observability(metrics.Snapshot()))
		cli.WriteMetrics("ioanalyze", *metricsOut, metrics)
	}
	if interrupted {
		os.Exit(cli.ExitInterrupted)
	}
}
