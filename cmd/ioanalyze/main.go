// Command ioanalyze parses a directory of Darshan-format logs (as written
// by iogen or any tool targeting the logfmt format) or a campaign archive
// and prints the study's tables and figures for them — the darshan-util
// half of the pipeline on its own.
//
// Ingestion is parallel and streaming: logs fan out to a worker pool of
// private aggregators that merge at the end (deterministically — the same
// corpus renders the same report at any -workers value), and archives are
// consumed one entry at a time, so memory stays bounded regardless of
// archive size.
//
// Robustness: logs are treated as untrusted input and decoded under hard
// limits (a crafted or damaged log cannot force unbounded allocation).
// With -quarantine, undecodable logs are moved aside into the given
// directory with a MANIFEST.tsv line each instead of merely being skipped.
// With -checkpoint, progress persists every -checkpoint-every logs and an
// interrupted pass (SIGINT/SIGTERM, crash) continues with -resume,
// producing the identical report. SIGINT flushes a valid partial report.
//
// Usage:
//
//	ioanalyze -dir /path/to/logs [-system summit] [-workers 0]
//	ioanalyze -archive campaign.dgar [-system summit] [-workers 0]
//	ioanalyze -archive campaign.dgc [-system summit] [-workers 0]
//	ioanalyze -resume pass.ckpt [-checkpoint pass.ckpt]
//	ioanalyze -dir /path/to/logs -format json [-section table2]
//	ioanalyze -archive campaign.dgar -convert campaign.dgc
//
// -archive accepts both row-oriented campaign archives (.dgar) and columnar
// campaign files (.dgc); the format is sniffed from the file header, and a
// columnar source folds whole pre-aggregated segments instead of re-parsing
// logs. -convert writes the columnar image of -dir or -archive to the given
// path (atomically; the file appears only on success) and exits without
// rendering a report.
//
// With -format json the report is the versioned JSON document that ioserved
// serves from /v1/report — stdout carries nothing but the document, so it
// can be diffed byte-for-byte against the service response. -format csv
// emits the figure series for external plotting.
//
// Exit status: 0 on success (even with some unreadable logs, which are
// reported on stderr); 1 when nothing could be parsed at all or the source
// is unreadable; 2 on usage errors; 130 when interrupted.
package main

import (
	"flag"
	"fmt"
	"os"

	"iolayers/internal/analysis"
	"iolayers/internal/cli"
	"iolayers/internal/core"
	"iolayers/internal/darshan/colfmt"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/report"
)

func main() {
	var (
		system     = flag.String("system", "summit", "system the logs came from: summit or cori")
		dir        = flag.String("dir", "", "directory of .darshan logs")
		archive    = flag.String("archive", "", "campaign archive (.dgar) to analyze instead of a directory")
		formatFlag = flag.String("format", "text", "report output format: text, json, or csv")
		section    = flag.String("section", "", "render one section (table2..table6, figure3..figure11, users, predict, ...; default all)")
		convert    = flag.String("convert", "", "convert the source to a columnar campaign file (.dgc) at this path and exit")
	)
	var common cli.CommonFlags
	common.Register(flag.CommandLine, cli.FlagDebug|cli.FlagWorkers|cli.FlagCheckpoint|cli.FlagQuarantine)
	flag.Parse()

	format, err := report.ParseFormat(*formatFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ioanalyze:", err)
		os.Exit(2)
	}

	ctx, cancel := cli.SignalContext("ioanalyze")
	defer cancel()
	act := common.Activate(ctx, "ioanalyze")
	defer act.Close()
	metrics := act.Metrics

	if *convert != "" {
		if (*dir == "") == (*archive == "") {
			fmt.Fprintln(os.Stderr, "ioanalyze: -convert needs exactly one of -dir or -archive")
			os.Exit(2)
		}
		cvOpts := core.ConvertOptions{Metrics: metrics}
		var (
			res    core.ConvertResult
			source string
		)
		if *archive != "" {
			source = *archive
			res, err = core.ConvertArchive(ctx, *archive, *convert, cvOpts)
		} else {
			source = *dir
			res, err = core.ConvertDir(ctx, *dir, *convert, cvOpts)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ioanalyze:", err)
			if cli.Interrupted(err) {
				os.Exit(cli.ExitInterrupted)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ioanalyze: converted %d logs from %s into %d segments at %s (%d -> %d bytes)\n",
			res.Logs, source, res.Segments, *convert, res.BytesIn, res.BytesOut)
		if metrics != nil {
			fmt.Println(report.Observability(metrics.Snapshot()))
			act.WriteMetricsOut()
		}
		return
	}

	opts := core.IngestOptions{
		Workers:         common.Workers,
		QuarantineDir:   common.QuarantineDir,
		CheckpointPath:  common.CheckpointPath,
		CheckpointEvery: common.CheckpointEvery,
		Metrics:         metrics,
	}
	if common.ResumePath != "" {
		ck, err := core.LoadIngestCheckpoint(common.ResumePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ioanalyze:", err)
			os.Exit(2)
		}
		opts.Resume = ck
		// The checkpoint pins the source and system; flags must not
		// silently redirect a resumed pass.
		*system = ck.System
		if ck.Mode == "archive" || ck.Mode == "columnar" {
			*archive, *dir = ck.Source, ""
		} else {
			*dir, *archive = ck.Source, ""
		}
		if opts.CheckpointPath == "" {
			opts.CheckpointPath = common.ResumePath
		}
		if opts.LargeJobProcs == 0 {
			opts.LargeJobProcs = ck.LargeJobProcs
		}
		fmt.Fprintf(os.Stderr, "ioanalyze: resuming %s pass over %s (%d logs done)\n",
			ck.Mode, ck.Source, ck.EntriesDone)
	}
	if *dir == "" && *archive == "" {
		fmt.Fprintln(os.Stderr, "ioanalyze: -dir, -archive, or -resume is required")
		os.Exit(2)
	}
	sys := systems.ByName(*system)
	if sys == nil {
		fmt.Fprintf(os.Stderr, "ioanalyze: unknown system %q\n", *system)
		os.Exit(2)
	}

	var (
		rep    *analysis.Report
		res    core.IngestResult
		source string
	)
	if *archive != "" {
		source = *archive
		// The header, not the filename, decides the format: a columnar
		// campaign folds pre-aggregated segments, an archive re-parses logs.
		if colfmt.SniffFile(*archive) {
			rep, res, err = core.IngestColumnar(ctx, sys, *archive, opts)
		} else {
			rep, res, err = core.IngestArchive(ctx, sys, *archive, opts)
		}
	} else {
		source = *dir
		rep, res, err = core.IngestDir(ctx, sys, *dir, opts)
		if err == nil && res.Parsed == 0 && res.Failed == 0 {
			fmt.Fprintf(os.Stderr, "ioanalyze: no .darshan logs in %s\n", source)
			os.Exit(1)
		}
	}

	for _, f := range res.Failures {
		fmt.Fprintf(os.Stderr, "ioanalyze: skipping %s: %v\n", f.Source, f.Err)
	}
	if extra := res.Failed - len(res.Failures); extra > 0 {
		fmt.Fprintf(os.Stderr, "ioanalyze: ... and %d more unreadable logs\n", extra)
	}
	if res.Quarantined > 0 {
		fmt.Fprintf(os.Stderr, "ioanalyze: quarantined %d logs into %s\n", res.Quarantined, common.QuarantineDir)
	}
	interrupted := cli.Interrupted(err)
	if err != nil && !interrupted {
		// Framing-level damage (or an unreadable source): report it, and
		// salvage whatever was ingested before the damage point.
		fmt.Fprintln(os.Stderr, "ioanalyze:", err)
		if res.Parsed == 0 {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ioanalyze: continuing with the %d logs before the damage\n", res.Parsed)
	}
	if res.Parsed == 0 && !interrupted {
		fmt.Fprintf(os.Stderr, "ioanalyze: every log in %s was unreadable (%d failures)\n",
			source, res.Failed)
		os.Exit(1)
	}

	if interrupted {
		fmt.Fprintf(os.Stderr, "ioanalyze: interrupted after %d logs — partial report follows\n", res.Parsed)
		if opts.CheckpointPath != "" {
			fmt.Fprintf(os.Stderr, "ioanalyze: resume with: ioanalyze -resume %s\n", opts.CheckpointPath)
		}
	}
	// The parse header is human progress, not report content: in text mode
	// it leads the report on stdout as it always has, but for machine
	// formats stdout must carry only the document, so it moves to stderr.
	headerDst := os.Stdout
	if format != report.FormatText {
		headerDst = os.Stderr
	}
	fmt.Fprintf(headerDst, "ioanalyze: parsed %d logs (%d unreadable) from %s\n\n",
		res.Parsed, res.Failed, source)
	if rep != nil {
		if format == report.FormatText {
			out, err := report.Section(rep, *section)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ioanalyze:", err)
				os.Exit(2)
			}
			fmt.Println(out)
		} else if err := report.Render(os.Stdout, rep, report.Options{Format: format, Section: *section}); err != nil {
			fmt.Fprintln(os.Stderr, "ioanalyze:", err)
			os.Exit(2)
		}
	}
	if metrics != nil {
		fmt.Fprintln(headerDst, report.Observability(metrics.Snapshot()))
		act.WriteMetricsOut()
	}
	if interrupted {
		os.Exit(cli.ExitInterrupted)
	}
}
