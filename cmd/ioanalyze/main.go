// Command ioanalyze parses a directory of Darshan-format logs (as written
// by iogen or any tool targeting the logfmt format) or a campaign archive
// and prints the study's tables and figures for them — the darshan-util
// half of the pipeline on its own.
//
// Ingestion is parallel and streaming: logs fan out to a worker pool of
// private aggregators that merge at the end (deterministically — the same
// corpus renders the same report at any -workers value), and archives are
// consumed one entry at a time, so memory stays bounded regardless of
// archive size.
//
// Usage:
//
//	ioanalyze -dir /path/to/logs [-system summit] [-workers 0]
//	ioanalyze -archive campaign.dgar [-system summit] [-workers 0]
//
// Exit status: 0 on success (even with some unreadable logs, which are
// reported on stderr); 1 when nothing could be parsed at all or the source
// is unreadable; 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"iolayers/internal/analysis"
	"iolayers/internal/core"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/report"
)

func main() {
	var (
		system  = flag.String("system", "summit", "system the logs came from: summit or cori")
		dir     = flag.String("dir", "", "directory of .darshan logs")
		archive = flag.String("archive", "", "campaign archive (.dgar) to analyze instead of a directory")
		workers = flag.Int("workers", 0, "ingestion worker pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *dir == "" && *archive == "" {
		fmt.Fprintln(os.Stderr, "ioanalyze: -dir or -archive is required")
		os.Exit(2)
	}
	sys := systems.ByName(*system)
	if sys == nil {
		fmt.Fprintf(os.Stderr, "ioanalyze: unknown system %q\n", *system)
		os.Exit(2)
	}

	opts := core.IngestOptions{Workers: *workers}
	var (
		rep    *analysis.Report
		res    core.IngestResult
		err    error
		source string
	)
	if *archive != "" {
		source = *archive
		rep, res, err = core.IngestArchive(sys, *archive, opts)
	} else {
		source = *dir
		rep, res, err = core.IngestDir(sys, *dir, opts)
		if err == nil && res.Parsed == 0 && res.Failed == 0 {
			fmt.Fprintf(os.Stderr, "ioanalyze: no .darshan logs in %s\n", source)
			os.Exit(1)
		}
	}

	for _, f := range res.Failures {
		fmt.Fprintf(os.Stderr, "ioanalyze: skipping %s: %v\n", f.Source, f.Err)
	}
	if extra := res.Failed - len(res.Failures); extra > 0 {
		fmt.Fprintf(os.Stderr, "ioanalyze: ... and %d more unreadable logs\n", extra)
	}
	if err != nil {
		// Framing-level damage (or an unreadable source): report it, and
		// salvage whatever was ingested before the damage point.
		fmt.Fprintln(os.Stderr, "ioanalyze:", err)
		if res.Parsed == 0 {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ioanalyze: continuing with the %d logs before the damage\n", res.Parsed)
	}
	if res.Parsed == 0 {
		fmt.Fprintf(os.Stderr, "ioanalyze: every log in %s was unreadable (%d failures)\n",
			source, res.Failed)
		os.Exit(1)
	}

	fmt.Printf("ioanalyze: parsed %d logs (%d unreadable) from %s\n\n",
		res.Parsed, res.Failed, source)
	fmt.Println(report.Everything(rep))
}
