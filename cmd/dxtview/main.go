// Command dxtview analyzes the DXT traces in Darshan-format logs: access
// patterns, I/O phases, duty cycles — the in-depth view §2.2 says DXT
// exists for. Logs without DXT sections (the production default on both
// studied systems) report "no traces".
//
// Usage:
//
//	dxtview [-gap 1.0] file.darshan [...]
package main

import (
	"flag"
	"fmt"
	"os"

	"iolayers/internal/cli"
	"iolayers/internal/darshan/logfmt"
	"iolayers/internal/dxtan"
)

func main() {
	gap := flag.Float64("gap", 1.0, "idle seconds separating I/O phases")
	var common cli.CommonFlags
	common.Register(flag.CommandLine, cli.FlagDebug)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: dxtview [-gap seconds] file.darshan [...]")
		os.Exit(2)
	}
	ctx, cancel := cli.SignalContext("dxtview")
	defer cancel()
	act := common.Activate(ctx, "dxtview")
	defer act.Close()
	exit := 0
	for _, path := range flag.Args() {
		if ctx.Err() != nil {
			exit = cli.ExitInterrupted
			break
		}
		log, err := logfmt.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dxtview: %s: %v\n", path, err)
			exit = 1
			continue
		}
		fmt.Printf("# %s (job %d)\n", path, log.Job.JobID)
		if len(log.DXT) == 0 {
			fmt.Println("no traces (DXT was not enabled when this log was produced)")
			continue
		}
		fmt.Print(dxtan.Render(log, dxtan.AnalyzeLog(log, *gap)))
	}
	act.WriteMetricsOut()
	os.Exit(exit)
}
