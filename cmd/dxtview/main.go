// Command dxtview analyzes the DXT traces in Darshan-format logs: access
// patterns, I/O phases, duty cycles — the in-depth view §2.2 says DXT
// exists for. Logs without DXT sections (the production default on both
// studied systems) report "no traces".
//
// Usage:
//
//	dxtview [-gap 1.0] file.darshan [...]
package main

import (
	"flag"
	"fmt"
	"os"

	"iolayers/internal/cli"
	"iolayers/internal/darshan/logfmt"
	"iolayers/internal/dxtan"
	"iolayers/internal/obsv"
)

func main() {
	gap := flag.Float64("gap", 1.0, "idle seconds separating I/O phases")
	debugAddr := flag.String("debug-addr", "", "serve pprof and expvar on this address while running")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: dxtview [-gap seconds] file.darshan [...]")
		os.Exit(2)
	}
	defer cli.StartDebug("dxtview", *debugAddr, obsv.New())()
	ctx, cancel := cli.SignalContext("dxtview")
	defer cancel()
	exit := 0
	for _, path := range flag.Args() {
		if ctx.Err() != nil {
			exit = cli.ExitInterrupted
			break
		}
		log, err := logfmt.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dxtview: %s: %v\n", path, err)
			exit = 1
			continue
		}
		fmt.Printf("# %s (job %d)\n", path, log.Job.JobID)
		if len(log.DXT) == 0 {
			fmt.Println("no traces (DXT was not enabled when this log was produced)")
			continue
		}
		fmt.Print(dxtan.Render(log, dxtan.AnalyzeLog(log, *gap)))
	}
	os.Exit(exit)
}
