// Command ioprobe runs TOKIO-style performance probes against a simulated
// system's storage layers and reports delivered-bandwidth variability — the
// sampling-based third vantage point of the paper's Table 1 taxonomy.
//
// Usage:
//
//	ioprobe [-system summit] [-samples 100] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"iolayers/internal/cli"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/probes"
)

func main() {
	var (
		system  = flag.String("system", "summit", "system to probe: summit or cori")
		samples = flag.Int("samples", 100, "probe repetitions per layer")
		seed    = flag.Uint64("seed", 1, "probe seed")
	)
	var common cli.CommonFlags
	common.Register(flag.CommandLine, cli.FlagDebug)
	flag.Parse()
	sys := systems.ByName(*system)
	if sys == nil {
		fmt.Fprintf(os.Stderr, "ioprobe: unknown system %q\n", *system)
		os.Exit(2)
	}
	ctx, cancel := cli.SignalContext("ioprobe")
	defer cancel()
	act := common.Activate(ctx, "ioprobe")
	defer act.Close()
	defer act.WriteMetricsOut()
	h := probes.NewHarness(sys, *seed)
	samplesOut, err := h.RunContext(ctx, *samples)
	if cli.Interrupted(err) {
		fmt.Fprintln(os.Stderr, "ioprobe: interrupted — summarizing completed probe series")
		fmt.Print(probes.Render(sys.Name, probes.Summarize(samplesOut)))
		os.Exit(cli.ExitInterrupted)
	}
	fmt.Print(probes.Render(sys.Name, probes.Summarize(samplesOut)))
}
