// Command ioprobe runs TOKIO-style performance probes against a simulated
// system's storage layers and reports delivered-bandwidth variability — the
// sampling-based third vantage point of the paper's Table 1 taxonomy.
//
// Usage:
//
//	ioprobe [-system summit] [-samples 100] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"iolayers/internal/cli"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/obsv"
	"iolayers/internal/probes"
)

func main() {
	var (
		system    = flag.String("system", "summit", "system to probe: summit or cori")
		samples   = flag.Int("samples", 100, "probe repetitions per layer")
		seed      = flag.Uint64("seed", 1, "probe seed")
		debugAddr = flag.String("debug-addr", "", "serve pprof and expvar on this address while running")
	)
	flag.Parse()
	defer cli.StartDebug("ioprobe", *debugAddr, obsv.New())()
	sys := systems.ByName(*system)
	if sys == nil {
		fmt.Fprintf(os.Stderr, "ioprobe: unknown system %q\n", *system)
		os.Exit(2)
	}
	ctx, cancel := cli.SignalContext("ioprobe")
	defer cancel()
	h := probes.NewHarness(sys, *seed)
	samplesOut, err := h.RunContext(ctx, *samples)
	if cli.Interrupted(err) {
		fmt.Fprintln(os.Stderr, "ioprobe: interrupted — summarizing completed probe series")
		fmt.Print(probes.Render(sys.Name, probes.Summarize(samplesOut)))
		os.Exit(cli.ExitInterrupted)
	}
	fmt.Print(probes.Render(sys.Name, probes.Summarize(samplesOut)))
}
