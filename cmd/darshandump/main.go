// Command darshandump prints one Darshan-format log in full, the way
// darshan-parser does: the job header, the name table, and every record's
// counters by name.
//
// Usage:
//
//	darshandump file.darshan [file2.darshan ...]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"iolayers/internal/cli"
	"iolayers/internal/darshan"
	"iolayers/internal/darshan/logfmt"
)

func main() {
	var common cli.CommonFlags
	common.Register(flag.CommandLine, cli.FlagDebug)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: darshandump file.darshan [...]")
		os.Exit(2)
	}
	ctx, cancel := cli.SignalContext("darshandump")
	defer cancel()
	act := common.Activate(ctx, "darshandump")
	defer act.Close()
	exit := 0
	for _, path := range flag.Args() {
		if ctx.Err() != nil {
			exit = cli.ExitInterrupted
			break
		}
		if err := dump(path); err != nil {
			fmt.Fprintf(os.Stderr, "darshandump: %s: %v\n", path, err)
			exit = 1
		}
	}
	act.WriteMetricsOut()
	os.Exit(exit)
}

func dump(path string) error {
	log, err := logfmt.ReadFile(path)
	if err != nil {
		return err
	}
	j := log.Job
	fmt.Printf("# log:        %s\n", path)
	fmt.Printf("# jobid:      %d\n", j.JobID)
	fmt.Printf("# uid:        %d\n", j.UserID)
	fmt.Printf("# nprocs:     %d\n", j.NProcs)
	fmt.Printf("# start_time: %s\n", time.Unix(j.StartTime, 0).UTC().Format(time.RFC3339))
	fmt.Printf("# end_time:   %s\n", time.Unix(j.EndTime, 0).UTC().Format(time.RFC3339))
	fmt.Printf("# run_time:   %.0f\n", j.Runtime())
	fmt.Printf("# exe:        %s\n", j.Exe)
	for k, v := range j.Metadata {
		fmt.Printf("# meta %s = %s\n", k, v)
	}
	fmt.Printf("# records:    %d, names: %d\n\n", len(log.Records), len(log.Names))

	if len(log.DXT) > 0 {
		fmt.Printf("# DXT traces: %d\n", len(log.DXT))
		for _, tr := range log.DXT {
			fmt.Printf("DXT %s\t%d\t%016x\t%s\n", tr.Module, tr.Rank, uint64(tr.Record), log.PathOf(tr.Record))
			for _, seg := range tr.Segments {
				fmt.Printf("\t%-5s off=%-12d len=%-12d [%.6f, %.6f]\n",
					seg.Kind, seg.Offset, seg.Length, seg.Start, seg.End)
			}
		}
		fmt.Println()
	}

	for _, rec := range log.Records {
		fmt.Printf("%s\t%d\t%016x\t%s\n", rec.Module, rec.Rank, uint64(rec.Record), log.PathOf(rec.Record))
		names := darshan.CounterNames(rec.Module)
		for i, v := range rec.Counters {
			if v == 0 {
				continue
			}
			name := fmt.Sprintf("COUNTER_%d", i)
			if i < len(names) {
				name = names[i]
			}
			fmt.Printf("\t%s\t%d\n", name, v)
		}
		fnames := darshan.FCounterNames(rec.Module)
		for i, v := range rec.FCounters {
			if v == 0 {
				continue
			}
			name := fmt.Sprintf("F_COUNTER_%d", i)
			if i < len(fnames) {
				name = fnames[i]
			}
			fmt.Printf("\t%s\t%.6f\n", name, v)
		}
	}
	return nil
}
