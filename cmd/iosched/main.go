// Command iosched simulates the batch scheduler over a profile-derived job
// stream and quantifies DataWarp's scheduler integration (paper §2.1.2):
// the same jobs scheduled with stage-in overlapping queue wait versus
// staging inline on the allocation.
//
// Usage:
//
//	iosched [-system cori] [-scale 0.0002] [-days 30] [-seed 1]
//	        [-faults production] [-faultseed 7]
//
// With -faults, jobs submitted inside the schedule's machine-wide slowdown
// windows run longer (their I/O phases stretch), showing how storage-side
// degradation ripples into queue waits and utilization.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"iolayers/internal/cli"
	"iolayers/internal/dist"
	"iolayers/internal/sched"
	"iolayers/internal/workload"
)

func main() {
	var (
		system = flag.String("system", "cori", "system profile: summit or cori")
		scale  = flag.Float64("scale", 0.0002, "job-count scale")
		days   = flag.Float64("days", 0, "submission window in days (0 = scale the year like the job count)")
		seed   = flag.Uint64("seed", 1, "job-stream seed")
	)
	var common cli.CommonFlags
	common.Register(flag.CommandLine, cli.FlagDebug|cli.FlagFaults)
	flag.Parse()
	act := common.Activate(context.Background(), "iosched")
	defer act.Close()
	if *days <= 0 {
		// Scale the submission window with the job count so the simulated
		// machine sees its production load density.
		*days = 365 * *scale
	}

	var (
		profile      workload.Profile
		machineNodes int
		procsPerNode int
		bbNodes      int
		bbFraction   float64
	)
	switch *system {
	case "cori", "Cori":
		profile, machineNodes, procsPerNode = workload.Cori(), 9688, 64
		bbNodes, bbFraction = 288, 0.19 // CBB-exclusive + both-layer share
	case "summit", "Summit":
		profile, machineNodes, procsPerNode = workload.Summit(), 4608, 42
		bbNodes, bbFraction = 0, 0 // SCNL is node-local: nothing to schedule
	default:
		fmt.Fprintf(os.Stderr, "iosched: unknown system %q\n", *system)
		os.Exit(2)
	}

	schedule, err := common.FaultSchedule(*seed, *days*86400)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iosched:", err)
		os.Exit(2)
	}
	if schedule != nil {
		fmt.Fprintf(os.Stderr, "iosched: %s\n", schedule.Describe())
	}

	jobs := sched.FromProfile(profile, sched.SourceConfig{
		Scale: *scale, Seed: *seed, PeriodSeconds: *days * 86400,
		ProcsPerNode: procsPerNode, MachineNodes: machineNodes,
		BBFraction:   bbFraction,
		StageSeconds: dist.LogNormal{Median: 120, Sigma: 1},
		Faults:       schedule,
	})
	fmt.Printf("%s: %d jobs over %.0f days on %d nodes (%d burst-buffer nodes)\n\n",
		profile.SystemName, len(jobs), *days, machineNodes, bbNodes)

	ctx, cancel := cli.SignalContext("iosched")
	defer cancel()
	run := func(label string, overlap bool) sched.Metrics {
		_, m, err := sched.SimulateContext(ctx, sched.Config{
			Nodes: machineNodes, BBNodes: bbNodes, OverlapStaging: overlap,
		}, jobs)
		if cli.Interrupted(err) {
			fmt.Fprintf(os.Stderr, "iosched: interrupted with %d of %d jobs placed\n", m.Jobs, len(jobs))
			os.Exit(cli.ExitInterrupted)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "iosched:", err)
			os.Exit(1)
		}
		fmt.Printf("%-26s mean wait %8.1fs  p95 %9.1fs  util %5.1f%%  peak queue %4d  staging hidden %8.0fs\n",
			label, m.MeanWait, m.P95Wait, 100*m.MeanUtilization, m.PeakQueueDepth, m.StageHiddenTotal)
		return m
	}
	if bbNodes > 0 {
		over := run("DataWarp overlapped staging", true)
		inline := run("inline (user cp) staging", false)
		fmt.Printf("\nstage time hidden behind queue wait: %.0fs across the campaign\n", over.StageHiddenTotal)
		if inline.MeanWait > over.MeanWait {
			fmt.Printf("mean wait reduction from overlap: %.1fs per job\n", inline.MeanWait-over.MeanWait)
		}
	} else {
		run("FCFS + EASY backfill", false)
		fmt.Println("\n(Summit's SCNL is compute-node-local: no scheduler-managed staging pool)")
	}
}
