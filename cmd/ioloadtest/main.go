// Command ioloadtest is the open-loop load generator and SLO gate for
// the query tier: it offers a declared request mix (report renders,
// compare scatter/gathers, predict documents, dataset listings,
// periodic ingest bursts, rotating multi-tenant API keys) at a fixed
// arrival rate against an ioserved or iorouter URL, measures
// per-endpoint latency distributions in HDR histograms from each
// request's *scheduled* arrival time (no coordinated omission), and
// classifies every outcome: ok, throttled (429 — the router doing its
// job, not an error), shed (the generator's own client cap),
// unauthorized, client/server/network errors, byte-divergent 200s (two
// bodies for the same URL at the same dataset generation — a
// replica-identity bug, always fatal to the SLO gate), and non-envelope
// error bodies (a non-200 that does not carry the structured
// internal/httpapi envelope — a contract leak the gate pins to zero).
//
// Usage:
//
//	ioloadtest -target http://host:port -scenario scenario.toml
//	           [-duration 10s] [-rate 2000] [-clients 1000] [-seed 7]
//	           [-scale 1.0] [-apikey KEY]... [-out summary.json]
//	           [-check slo_baseline.json [-update]] [-q]
//	ioloadtest -make-fixture DIR [-fixture-logs 32] [-fixture-seed 1]
//	           [-system summit]
//
// The scenario file is a small declarative TOML subset (see
// internal/loadtest); -duration/-rate/-clients/-seed override its
// fields, and -scale multiplies rate and clients so the same committed
// scenario serves a 1k-client CI gate and a 10k-client local soak.
// Same seed, same schedule: the arrival timeline and request sequence
// replay exactly.
//
// With -check the run is gated against a committed SLO baseline:
// per-scenario p50/p99/p999 latency bands, max error rate, min
// throughput, and a zero-divergence pin, with a tolerance multiplier
// that scales latency/throughput bands but never excuses errors.
// -update regenerates the scenario's baseline entry from this run (3x
// latency headroom, half-throughput floor) instead of checking.
//
// -make-fixture writes a deterministic corpus (same bytes for the same
// seed, see serve.WriteFixture) and exits — scripts use it to build the
// source directory that ingest-burst scenarios POST through the router.
//
// Exit status: 0 clean, 1 SLO violation, 2 usage or run errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"iolayers/internal/cli"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/loadtest"
	"iolayers/internal/serve"
)

func main() {
	var apikeys []string
	var (
		target      = flag.String("target", "", "base URL of the ioserved or iorouter under test")
		scenarioF   = flag.String("scenario", "", "scenario TOML file (required unless -make-fixture)")
		duration    = flag.Duration("duration", 0, "override the scenario duration")
		rate        = flag.Float64("rate", 0, "override the offered arrival rate (req/s)")
		clients     = flag.Int("clients", 0, "override the concurrent client cap")
		seed        = flag.Uint64("seed", 0, "override the scenario seed")
		scale       = flag.Float64("scale", 1, "multiply rate and clients (0.1 = one tenth the load)")
		ingestSrc   = flag.String("ingest-source", "", "override the corpus path ingest operations POST (scenario files cannot know per-run temp dirs)")
		out         = flag.String("out", "", "write the summary JSON here")
		check       = flag.String("check", "", "gate the run against this SLO baseline file")
		update      = flag.Bool("update", false, "with -check: regenerate the baseline entry from this run")
		quiet       = flag.Bool("q", false, "suppress per-second progress lines")
		makeFixture = flag.String("make-fixture", "", "write a deterministic fixture corpus to this directory and exit")
		fxLogs      = flag.Int("fixture-logs", 32, "with -make-fixture: how many logs to write")
		fxSeed      = flag.Uint64("fixture-seed", 1, "with -make-fixture: corpus seed")
		system      = flag.String("system", "summit", "with -make-fixture: system profile")
	)
	flag.Func("apikey", "rotate this API key into requests (repeatable; overrides the scenario's list)", func(v string) error {
		apikeys = append(apikeys, v)
		return nil
	})
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "ioloadtest: "+format+"\n", args...)
		os.Exit(2)
	}

	if *makeFixture != "" {
		sys := systems.ByName(*system)
		if sys == nil {
			fail("unknown system %q", *system)
		}
		if err := serve.WriteFixture(*makeFixture, sys, *fxLogs, *fxSeed); err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(os.Stderr, "ioloadtest: wrote %d fixture logs (seed %d) to %s\n",
			*fxLogs, *fxSeed, *makeFixture)
		return
	}

	if *scenarioF == "" {
		fail("need -scenario (or -make-fixture)")
	}
	if *target == "" {
		fail("need -target")
	}
	sc, err := loadtest.ParseScenarioFile(*scenarioF)
	if err != nil {
		fail("%v", err)
	}
	if *duration > 0 {
		sc.Duration = *duration
	}
	if *rate > 0 {
		sc.Rate = *rate
	}
	if *clients > 0 {
		sc.Clients = *clients
	}
	if *seed > 0 {
		sc.Seed = *seed
	}
	if len(apikeys) > 0 {
		sc.APIKeys = apikeys
	}
	if *ingestSrc != "" {
		sc.IngestSource = *ingestSrc
	}
	if *scale != 1 {
		if err := sc.Scale(*scale); err != nil {
			fail("%v", err)
		}
	}

	ctx, cancel := cli.SignalContext("ioloadtest")
	defer cancel()
	opts := loadtest.Options{Target: *target}
	if !*quiet {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "ioloadtest: "+format+"\n", args...)
		}
	}
	fmt.Fprintf(os.Stderr, "ioloadtest: scenario %q -> %s: %.0f req/s x %v, %d clients, seed %d\n",
		sc.Name, *target, sc.Rate, sc.Duration, sc.Clients, sc.Seed)
	res, err := loadtest.Run(ctx, sc, opts)
	if err != nil {
		fail("%v", err)
	}
	res.Render(os.Stdout)

	if *out != "" {
		if err := res.WriteJSONFile(*out); err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(os.Stderr, "ioloadtest: summary written to %s\n", *out)
	}

	if *check == "" {
		return
	}
	if *update {
		base := &loadtest.Baseline{}
		if prev, err := loadtest.LoadBaseline(*check); err == nil {
			base = prev
		} else if !os.IsNotExist(err) {
			// A malformed existing baseline should not be silently
			// replaced; an absent one is the bootstrap case.
			if _, statErr := os.Stat(*check); statErr == nil {
				fail("%v", err)
			}
		}
		base.UpdateFrom(res)
		if err := base.WriteJSONFile(*check); err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(os.Stderr, "ioloadtest: baseline %s updated for scenario %q\n", *check, sc.Name)
		return
	}
	base, err := loadtest.LoadBaseline(*check)
	if err != nil {
		fail("%v", err)
	}
	violations := base.Check(res)
	if len(violations) == 0 {
		fmt.Fprintf(os.Stderr, "ioloadtest: SLO check passed against %s\n", *check)
		return
	}
	fmt.Fprintf(os.Stderr, "ioloadtest: %d SLO violation(s) against %s:\n", len(violations), *check)
	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "  %s\n", v)
	}
	os.Exit(1)
}
