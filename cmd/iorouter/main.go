// Command iorouter fronts a fleet of ioserved replicas with one resilient
// query endpoint. Datasets are sharded across the fleet by consistent
// hashing with a replication factor, so every dataset is queryable from
// more than one replica; the router health-checks the fleet, wraps each
// replica in a circuit breaker, and fails queries over to the next owner
// when a replica is dark, tripped, saturated, or answering 5xx.
//
// Usage:
//
//	iorouter -listen :8090 -replica host1:8080 -replica host2:8080 \
//	         -replica host3:8080 [-replication 2] \
//	         [-apikey key=tenant:rate[:burst]] [-apikeys file]
//
// The router speaks the same /v1 API as a single ioserved and relays
// bodies byte-identically:
//
//	GET  /v1                        — route index: the ioserved surface
//	                                  plus /v1/cluster (docs/api.md)
//	GET  /v1/report/{dataset}       — relayed from an owner, with failover
//	GET  /v1/predict/{dataset}      — predictive-analytics document,
//	                                  relayed with the same failover walk
//	GET  /v1/datasets               — union of every replica's listing
//	GET  /v1/compare/{a}/{b}        — scatter/gather across the two shards
//	POST /v1/ingest                 — fanned out to every owner
//	GET  /v1/cluster[?dataset=d]    — replica health, breakers, ownership
//	GET  /healthz                   — router liveness
//	GET  /readyz                    — 200 iff ≥1 replica is healthy
//	GET  /metrics, /metrics.json
//
// Error bodies follow the shared structured-envelope contract
// ({"error":{"code","message","retry_after_ms"}}, docs/api.md): errors
// a replica answers are relayed byte-for-byte, and errors the router
// synthesizes itself (auth, fan-out failure, owner exhaustion) use the
// same envelope, so clients parse one error shape everywhere.
//
// With -apikey (repeatable) or -apikeys, every /v1 request must present a
// registered key (X-API-Key header or Authorization: Bearer), and each
// tenant's request rate is token-bucket limited at the edge: 401 for
// unknown keys, 429 + Retry-After when a tenant is over its rate. Without
// keys the cluster is open, like a bare ioserved.
//
// On SIGINT/SIGTERM the router drains like ioserved does: stop accepting,
// finish in-flight relays (up to -drain-timeout), exit 0 — or exit 1 with
// "drain incomplete".
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"iolayers/internal/cli"
	"iolayers/internal/cluster"
	"iolayers/internal/obsv"
)

func main() {
	var replicas, keySpecs []string
	var (
		listen      = flag.String("listen", ":8090", "address to serve the cluster query API on")
		addrFile    = flag.String("addr-file", "", "write the bound listen address to this file once serving")
		replication = flag.Int("replication", cluster.DefaultReplication, "how many replicas own each dataset")
		vnodes      = flag.Int("vnodes", cluster.DefaultVirtualNodes, "virtual nodes per replica on the hash ring")
		maxPerBE    = flag.Int("max-inflight-per-replica", cluster.DefaultMaxInFlightPerBackend, "concurrent requests held open against one replica")
		attemptTO   = flag.Duration("attempt-timeout", cluster.DefaultAttemptTimeout, "per-replica query attempt deadline before failing over")
		ingestTO    = flag.Duration("ingest-timeout", cluster.DefaultIngestTimeout, "per-replica ingest attempt deadline")
		probeEvery  = flag.Duration("probe-every", cluster.DefaultProbeInterval, "active health probe cadence")
		probeTO     = flag.Duration("probe-timeout", cluster.DefaultProbeTimeout, "active health probe deadline")
		brkThresh   = flag.Int("breaker-threshold", cluster.DefaultBreakerThreshold, "consecutive failures that trip a replica's circuit breaker")
		brkOpen     = flag.Duration("breaker-open", cluster.DefaultBreakerOpenBase, "first breaker open interval (doubles per consecutive trip)")
		brkOpenMax  = flag.Duration("breaker-open-max", cluster.DefaultBreakerOpenMax, "breaker open interval cap")
		keyFile     = flag.String("apikeys", "", "file of key=tenant:rate[:burst] lines (# comments); enables the auth edge")
		drain       = flag.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for in-flight requests")
	)
	flag.Func("replica", "an ioserved replica URL or host:port (repeatable, required)", func(v string) error {
		replicas = append(replicas, v)
		return nil
	})
	flag.Func("apikey", "key=tenant:rate[:burst] — register an API key (repeatable); enables the auth edge", func(v string) error {
		keySpecs = append(keySpecs, v)
		return nil
	})
	var common cli.CommonFlags
	common.Register(flag.CommandLine, cli.FlagDebug)
	flag.Parse()

	if len(replicas) == 0 {
		fmt.Fprintln(os.Stderr, "iorouter: at least one -replica is required")
		os.Exit(2)
	}

	metrics := obsv.New()
	stopDebug := cli.StartDebug("iorouter", common.DebugAddr, metrics)
	defer stopDebug()

	var keyring *cluster.Keyring
	if len(keySpecs) > 0 || *keyFile != "" {
		keyring = cluster.NewKeyring(nil)
		if *keyFile != "" {
			if err := keyring.LoadKeyFile(*keyFile); err != nil {
				fmt.Fprintf(os.Stderr, "iorouter: %v\n", err)
				os.Exit(2)
			}
		}
		for _, spec := range keySpecs {
			key, tenant, err := cluster.ParseKeySpec(spec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "iorouter: %v\n", err)
				os.Exit(2)
			}
			if err := keyring.Add(key, tenant); err != nil {
				fmt.Fprintf(os.Stderr, "iorouter: %v\n", err)
				os.Exit(2)
			}
		}
	}

	router, err := cluster.NewRouter(cluster.Config{
		Replicas:              replicas,
		Replication:           *replication,
		VirtualNodes:          *vnodes,
		MaxInFlightPerBackend: *maxPerBE,
		AttemptTimeout:        *attemptTO,
		IngestTimeout:         *ingestTO,
		ProbeInterval:         *probeEvery,
		ProbeTimeout:          *probeTO,
		Breaker: cluster.BreakerConfig{
			Threshold: *brkThresh, OpenBase: *brkOpen, OpenMax: *brkOpenMax,
		},
		Keyring: keyring,
		Metrics: metrics,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "iorouter: %v\n", err)
		os.Exit(2)
	}
	router.Start()
	defer router.Close()

	ctx, cancel := cli.SignalContext("iorouter")
	defer cancel()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iorouter:", err)
		os.Exit(1)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "iorouter:", err)
			os.Exit(1)
		}
	}
	auth := "open"
	if keyring != nil {
		auth = fmt.Sprintf("%d API keys", keyring.Len())
	}
	fmt.Fprintf(os.Stderr, "iorouter: routing http://%s over %d replicas (rf=%d, %s): %s\n",
		ln.Addr(), len(replicas), *replication, auth, strings.Join(replicas, ", "))

	srv := &http.Server{Handler: router.Handler(), ReadHeaderTimeout: 5 * time.Second}
	svc := cli.StartHTTP("iorouter", srv, ln, os.Stderr)
	if code := svc.WaitAndDrain(ctx, *drain, nil); code != 0 {
		os.Exit(code)
	}
	cli.WriteMetrics("iorouter", common.MetricsOut, metrics)
	fmt.Fprintln(os.Stderr, "iorouter: drained, bye")
}
