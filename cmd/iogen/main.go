// Command iogen synthesizes a production campaign and writes every Darshan
// log to disk in the self-describing compressed format, one file per log,
// the way a year of production collection would leave them.
//
// Usage:
//
//	iogen -out /path/to/logs [-system summit] [-scale 0.0005]
//	      [-filescale 0.02] [-seed 1]
//
// With -archive the campaign lands in a single .dgar bundle instead of one
// file per log — how year-long collections are actually shipped.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"iolayers/internal/cli"
	"iolayers/internal/core"
	"iolayers/internal/darshan"
	"iolayers/internal/darshan/logfmt"
	"iolayers/internal/report"
	"iolayers/internal/workload"
)

func main() {
	var (
		system    = flag.String("system", "summit", "system profile: summit or cori")
		out       = flag.String("out", "", "output directory (required)")
		scale     = flag.Float64("scale", 0.0005, "job-count scale")
		fileScale = flag.Float64("filescale", 0.02, "per-log file-count scale")
		seed      = flag.Uint64("seed", 1, "campaign seed")
		archive   = flag.Bool("archive", false, "write one .dgar campaign archive instead of per-log files")
	)
	var common cli.CommonFlags
	common.Register(flag.CommandLine, cli.FlagDebug)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "iogen: -out is required")
		os.Exit(2)
	}
	if !*archive {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "iogen:", err)
			os.Exit(1)
		}
	}

	campaign, err := core.NewCampaign(*system, workload.Config{
		Seed: *seed, JobScale: *scale, FileScale: *fileScale,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "iogen:", err)
		os.Exit(1)
	}

	var written atomic.Int64
	var sink core.LogSink
	var finish func() error = func() error { return nil }
	if *archive {
		path := *out
		if filepath.Ext(path) == "" {
			path += ".dgar"
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iogen:", err)
			os.Exit(1)
		}
		aw, err := logfmt.NewArchiveWriter(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iogen:", err)
			os.Exit(1)
		}
		var mu sync.Mutex
		sink = func(jobIdx, logIdx int, log *darshan.Log) error {
			mu.Lock()
			defer mu.Unlock()
			if err := aw.Append(log); err != nil {
				return err
			}
			written.Add(1)
			return nil
		}
		finish = func() error {
			if err := aw.Close(); err != nil {
				return err
			}
			return f.Close()
		}
		*out = path
	} else {
		sink = func(jobIdx, logIdx int, log *darshan.Log) error {
			name := fmt.Sprintf("%s_job%06d_log%05d.darshan", campaign.System.Name, jobIdx, logIdx)
			if err := logfmt.WriteFile(filepath.Join(*out, name), log); err != nil {
				return err
			}
			written.Add(1)
			return nil
		}
	}
	ctx, cancel := cli.SignalContext("iogen")
	defer cancel()
	act := common.Activate(ctx, "iogen")
	defer act.Close()
	metrics := act.Metrics
	rep, err := campaign.RunCheckpointed(ctx, core.RunOptions{Sink: sink, Metrics: metrics})
	interrupted := cli.Interrupted(err)
	if err != nil && !interrupted {
		fmt.Fprintln(os.Stderr, "iogen:", err)
		os.Exit(1)
	}
	// Finish even when interrupted: an archive gets its terminator, so the
	// partial campaign is still a valid, analyzable .dgar.
	if err := finish(); err != nil {
		fmt.Fprintln(os.Stderr, "iogen:", err)
		os.Exit(1)
	}
	if metrics != nil {
		logfmt.PublishMetrics(metrics)
		fmt.Println(report.Observability(metrics.Snapshot()))
		act.WriteMetricsOut()
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "iogen: interrupted — %d logs written to %s (partial campaign)\n",
			written.Load(), *out)
		os.Exit(cli.ExitInterrupted)
	}
	fmt.Printf("iogen: wrote %d logs (%d jobs, %d files) to %s\n",
		written.Load(), rep.Summary.Jobs, rep.Summary.Files, *out)
}
