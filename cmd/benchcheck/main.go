// Command benchcheck is the allocation-regression gate: it runs the
// ingestion and observability benchmarks and compares their allocs/op and
// B/op against the committed baseline (bench_baseline.json), failing when
// a hot path started allocating more than the tolerance allows. Wall time
// (ns/op) is reported but never gated — it is machine-dependent; the
// allocation counts are what the code controls.
//
// Usage:
//
//	benchcheck [-baseline bench_baseline.json] [-update]
//	           [-bench 'ArchiveIngest|ColumnarRender|ConvertArchive|ObsvOverhead']
//	           [-allocs-tol 0.05]
//
// With -update the baseline is rewritten from the current run (do this
// when an intentional change moves the numbers, and say why in the
// commit). Benchmarks present on only one side are reported but do not
// fail the gate — GOMAXPROCS-dependent variants come and go with the
// host. Exit status: 0 clean, 1 regression, 2 usage/run errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// Measurement is one benchmark's gated numbers.
type Measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Baseline is the committed reference file.
type Baseline struct {
	Note       string                 `json:"note"`
	Benchmarks map[string]Measurement `json:"benchmarks"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "bench_baseline.json", "baseline file to compare against")
		update       = flag.Bool("update", false, "rewrite the baseline from the current run")
		benchRe      = flag.String("bench", "ArchiveIngest|ColumnarRender|ConvertArchive|ObsvOverhead", "benchmark regex passed to go test -bench")
		benchtime    = flag.String("benchtime", "", "go test -benchtime value (empty = default)")
		allocsTol    = flag.Float64("allocs-tol", 0.05, "allowed fractional allocs/op growth")
		bytesTol     = flag.Float64("bytes-tol", 0.25, "allowed fractional B/op growth")
	)
	flag.Parse()
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = []string{".", "./internal/obsv"}
	}

	out, err := runBenchmarks(*benchRe, *benchtime, pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n%s\n", err, out)
		os.Exit(2)
	}
	current := ParseBenchOutput(out)
	if len(current) == 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: no benchmark results parsed")
		os.Exit(2)
	}

	if *update {
		b := Baseline{
			Note:       "allocation baseline for `make benchcheck`; regenerate with: go run ./cmd/benchcheck -update",
			Benchmarks: current,
		}
		data, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(2)
		}
		fmt.Printf("benchcheck: wrote %s (%d benchmarks)\n", *baselinePath, len(current))
		return
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v (bootstrap with -update)\n", err)
		os.Exit(2)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: parsing %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}

	regressions := Compare(base.Benchmarks, current, *allocsTol, *bytesTol, os.Stdout)
	if regressions > 0 {
		fmt.Printf("benchcheck: %d regression(s) vs %s\n", regressions, *baselinePath)
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %d benchmarks within tolerance of %s\n", len(current), *baselinePath)
}

func runBenchmarks(benchRe, benchtime string, pkgs []string) (string, error) {
	args := []string{"test", "-run", "^$", "-bench", benchRe, "-benchmem", "-count", "1"}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// ParseBenchOutput extracts per-benchmark measurements from `go test
// -bench` output. Keys are "<pkg>/<name>" with the trailing -GOMAXPROCS
// suffix stripped, so runs on hosts with different core counts compare.
func ParseBenchOutput(out string) map[string]Measurement {
	results := map[string]Measurement{}
	pkg := ""
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := stripProcsSuffix(fields[0])
		var m Measurement
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp, seen = v, true
			case "B/op":
				m.BytesPerOp, seen = v, true
			case "allocs/op":
				m.AllocsPerOp, seen = v, true
			}
		}
		if seen {
			results[pkg+"/"+name] = m
		}
	}
	return results
}

// stripProcsSuffix removes the -N GOMAXPROCS suffix go test appends to
// benchmark names ("BenchmarkFoo/bar-16" → "BenchmarkFoo/bar").
func stripProcsSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	suffix := name[i+1:]
	if suffix == "" {
		return name
	}
	for _, r := range suffix {
		if r < '0' || r > '9' {
			return name
		}
	}
	return name[:i]
}

// Compare prints a per-benchmark report and returns the number of gated
// regressions. Only allocs/op and B/op gate; ns/op is informational.
func Compare(base, current map[string]Measurement, allocsTol, bytesTol float64, w *os.File) int {
	names := make([]string, 0, len(current))
	for n := range current {
		names = append(names, n)
	}
	sort.Strings(names)

	regressions := 0
	for _, name := range names {
		cur := current[name]
		ref, ok := base[name]
		if !ok {
			fmt.Fprintf(w, "  new      %-60s allocs=%.0f (no baseline — add with -update)\n", name, cur.AllocsPerOp)
			continue
		}
		bad := false
		if exceeds(cur.AllocsPerOp, ref.AllocsPerOp, allocsTol) {
			fmt.Fprintf(w, "  REGRESS  %-60s allocs/op %.0f -> %.0f (>%+.0f%%)\n",
				name, ref.AllocsPerOp, cur.AllocsPerOp, allocsTol*100)
			bad = true
		}
		if exceeds(cur.BytesPerOp, ref.BytesPerOp, bytesTol) {
			fmt.Fprintf(w, "  REGRESS  %-60s B/op %.0f -> %.0f (>%+.0f%%)\n",
				name, ref.BytesPerOp, cur.BytesPerOp, bytesTol*100)
			bad = true
		}
		if bad {
			regressions++
			continue
		}
		fmt.Fprintf(w, "  ok       %-60s allocs=%.0f (base %.0f)  ns/op %.0f (base %.0f)\n",
			name, cur.AllocsPerOp, ref.AllocsPerOp, cur.NsPerOp, ref.NsPerOp)
	}
	for name := range base {
		if _, ok := current[name]; !ok {
			fmt.Fprintf(w, "  missing  %s (in baseline, not in this run)\n", name)
		}
	}
	return regressions
}

// exceeds reports whether cur grew past ref by more than tol. A zero ref
// is a hard floor: any growth at all fails (the zero-allocation paths).
func exceeds(cur, ref, tol float64) bool {
	if ref == 0 {
		return cur > 0
	}
	return cur > ref*(1+tol)
}
