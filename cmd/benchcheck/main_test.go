package main

import (
	"os"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: iolayers
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkArchiveIngest/sequential         	       8	 140919786 ns/op	      5216 logs/op	20985574 B/op	  217933 allocs/op
BenchmarkArchiveIngest/workers=4+metrics-16  	       8	 137452407 ns/op	      5216 logs/op	21530199 B/op	  219182 allocs/op
PASS
ok  	iolayers	4.903s
pkg: iolayers/internal/obsv
BenchmarkObsvOverhead/counter-nil-4 	829570444	         1.445 ns/op	       0 B/op	       0 allocs/op
PASS
`

func TestParseBenchOutput(t *testing.T) {
	got := ParseBenchOutput(sampleOutput)
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	seq, ok := got["iolayers/BenchmarkArchiveIngest/sequential"]
	if !ok {
		t.Fatal("sequential variant missing")
	}
	if seq.AllocsPerOp != 217933 || seq.BytesPerOp != 20985574 || seq.NsPerOp != 140919786 {
		t.Errorf("sequential = %+v", seq)
	}
	// The -16 GOMAXPROCS suffix must strip, the "=4+metrics" part must stay.
	if _, ok := got["iolayers/BenchmarkArchiveIngest/workers=4+metrics"]; !ok {
		t.Errorf("workers=4+metrics not normalized: %v", got)
	}
	nilC, ok := got["iolayers/internal/obsv/BenchmarkObsvOverhead/counter-nil"]
	if !ok {
		t.Fatalf("obsv benchmark missing or suffix mis-stripped: %v", got)
	}
	if nilC.AllocsPerOp != 0 {
		t.Errorf("counter-nil allocs = %v, want 0", nilC.AllocsPerOp)
	}
}

func TestStripProcsSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-16":                     "BenchmarkFoo",
		"BenchmarkFoo/bar-4":                  "BenchmarkFoo/bar",
		"BenchmarkFoo/workers=4+metrics-8":    "BenchmarkFoo/workers=4+metrics",
		"BenchmarkObsvOverhead/counter-nil-4": "BenchmarkObsvOverhead/counter-nil",
		"BenchmarkNoSuffix":                   "BenchmarkNoSuffix",
	}
	for in, want := range cases {
		if got := stripProcsSuffix(in); got != want {
			t.Errorf("stripProcsSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompare(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()

	base := map[string]Measurement{
		"a": {AllocsPerOp: 1000, BytesPerOp: 100000},
		"z": {AllocsPerOp: 0, BytesPerOp: 0},
	}
	// Within tolerance: +4% allocs under a 5% gate.
	ok := map[string]Measurement{
		"a": {AllocsPerOp: 1040, BytesPerOp: 100000},
		"z": {AllocsPerOp: 0, BytesPerOp: 0},
	}
	if n := Compare(base, ok, 0.05, 0.25, devnull); n != 0 {
		t.Errorf("within-tolerance run flagged %d regressions", n)
	}
	// Allocation regression past the gate.
	bad := map[string]Measurement{
		"a": {AllocsPerOp: 1100, BytesPerOp: 100000},
	}
	if n := Compare(base, bad, 0.05, 0.25, devnull); n != 1 {
		t.Errorf("alloc regression not flagged (n=%d)", n)
	}
	// A zero-alloc baseline is a hard floor: one allocation fails.
	floor := map[string]Measurement{
		"z": {AllocsPerOp: 1},
	}
	if n := Compare(base, floor, 0.05, 0.25, devnull); n != 1 {
		t.Errorf("zero-alloc floor not enforced (n=%d)", n)
	}
	// New benchmarks (no baseline) and missing ones never fail the gate.
	extra := map[string]Measurement{
		"brand-new": {AllocsPerOp: 5},
	}
	if n := Compare(base, extra, 0.05, 0.25, devnull); n != 0 {
		t.Errorf("unmatched benchmarks should not gate (n=%d)", n)
	}
}
