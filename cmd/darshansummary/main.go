// Command darshansummary renders a per-job report from one Darshan-format
// log, in the spirit of darshan-job-summary: per-module totals, estimated
// bandwidths, the access-size histogram, and the files that moved the most
// data.
//
// Usage:
//
//	darshansummary file.darshan [...]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"iolayers/internal/cli"
	"iolayers/internal/darshan"
	"iolayers/internal/darshan/logfmt"
	"iolayers/internal/report"
	"iolayers/internal/units"
)

func main() {
	top := flag.Int("top", 10, "files to list in the by-volume table")
	var common cli.CommonFlags
	common.Register(flag.CommandLine, cli.FlagDebug)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: darshansummary [-top N] file.darshan [...]")
		os.Exit(2)
	}
	ctx, cancel := cli.SignalContext("darshansummary")
	defer cancel()
	act := common.Activate(ctx, "darshansummary")
	defer act.Close()
	exit := 0
	for _, path := range flag.Args() {
		if ctx.Err() != nil {
			exit = cli.ExitInterrupted
			break
		}
		if err := summarize(path, *top); err != nil {
			fmt.Fprintf(os.Stderr, "darshansummary: %s: %v\n", path, err)
			exit = 1
		}
	}
	act.WriteMetricsOut()
	os.Exit(exit)
}

type moduleTotals struct {
	files                int
	reads, writes        int64
	bytesRead, bytesWrit int64
	readTime, writeTime  float64
}

func summarize(path string, top int) error {
	log, err := logfmt.ReadFile(path)
	if err != nil {
		return err
	}
	j := log.Job
	fmt.Printf("=== %s ===\n", path)
	fmt.Printf("job %d, uid %d, %d processes, %s, runtime %.0fs\n",
		j.JobID, j.UserID, j.NProcs,
		time.Unix(j.StartTime, 0).UTC().Format("2006-01-02 15:04"), j.Runtime())
	if d := j.Metadata["domain"]; d != "" {
		fmt.Printf("science domain: %s\n", d)
	}
	fmt.Println()

	totals := map[darshan.ModuleID]*moduleTotals{}
	type fileVol struct {
		path  string
		bytes int64
	}
	volumes := map[darshan.RecordID]int64{}
	for _, rec := range log.Records {
		mt, ok := totals[rec.Module]
		if !ok {
			mt = &moduleTotals{}
			totals[rec.Module] = mt
		}
		mt.files++
		switch rec.Module {
		case darshan.ModulePOSIX:
			mt.reads += rec.Counters[darshan.PosixReads]
			mt.writes += rec.Counters[darshan.PosixWrites]
			mt.bytesRead += rec.Counters[darshan.PosixBytesRead]
			mt.bytesWrit += rec.Counters[darshan.PosixBytesWritten]
			mt.readTime += rec.FCounters[darshan.PosixFReadTime]
			mt.writeTime += rec.FCounters[darshan.PosixFWriteTime]
			volumes[rec.Record] += rec.Counters[darshan.PosixBytesRead] + rec.Counters[darshan.PosixBytesWritten]
		case darshan.ModuleMPIIO:
			mt.reads += rec.Counters[darshan.MpiioIndepReads] + rec.Counters[darshan.MpiioCollReads]
			mt.writes += rec.Counters[darshan.MpiioIndepWrites] + rec.Counters[darshan.MpiioCollWrites]
			mt.bytesRead += rec.Counters[darshan.MpiioBytesRead]
			mt.bytesWrit += rec.Counters[darshan.MpiioBytesWritten]
			mt.readTime += rec.FCounters[darshan.MpiioFReadTime]
			mt.writeTime += rec.FCounters[darshan.MpiioFWriteTime]
		case darshan.ModuleSTDIO:
			mt.reads += rec.Counters[darshan.StdioReads]
			mt.writes += rec.Counters[darshan.StdioWrites]
			mt.bytesRead += rec.Counters[darshan.StdioBytesRead]
			mt.bytesWrit += rec.Counters[darshan.StdioBytesWritten]
			mt.readTime += rec.FCounters[darshan.StdioFReadTime]
			mt.writeTime += rec.FCounters[darshan.StdioFWriteTime]
			volumes[rec.Record] += rec.Counters[darshan.StdioBytesRead] + rec.Counters[darshan.StdioBytesWritten]
		}
	}

	fmt.Printf("%-8s %7s %10s %10s %12s %12s %10s %10s\n",
		"module", "files", "reads", "writes", "bytes read", "bytes writ", "read MB/s", "write MB/s")
	for _, m := range darshan.Modules() {
		mt, ok := totals[m]
		if !ok || m == darshan.ModuleLustre {
			continue
		}
		rbw, wbw := 0.0, 0.0
		if mt.readTime > 0 {
			rbw = float64(mt.bytesRead) / mt.readTime / 1e6
		}
		if mt.writeTime > 0 {
			wbw = float64(mt.bytesWrit) / mt.writeTime / 1e6
		}
		fmt.Printf("%-8s %7d %10d %10d %12s %12s %10.1f %10.1f\n",
			m, mt.files, mt.reads, mt.writes,
			report.HumanBytes(float64(mt.bytesRead)), report.HumanBytes(float64(mt.bytesWrit)),
			rbw, wbw)
	}

	// Access-size histogram across POSIX records.
	var hist [units.NumRequestBins]int64
	for _, rec := range log.RecordsFor(darshan.ModulePOSIX) {
		for b := 0; b < units.NumRequestBins; b++ {
			hist[b] += rec.Counters[darshan.PosixSizeRead0To100+b] +
				rec.Counters[darshan.PosixSizeWrite0To100+b]
		}
	}
	var histTotal int64
	for _, c := range hist {
		histTotal += c
	}
	if histTotal > 0 {
		fmt.Println("\nPOSIX access sizes:")
		for b, c := range hist {
			if c == 0 {
				continue
			}
			fmt.Printf("  %-9s %10d (%5.1f%%)\n",
				units.RequestBin(b), c, 100*float64(c)/float64(histTotal))
		}
	}

	// Top files by volume.
	files := make([]fileVol, 0, len(volumes))
	for id, b := range volumes {
		if b > 0 {
			files = append(files, fileVol{log.PathOf(id), b})
		}
	}
	sort.Slice(files, func(i, j int) bool { return files[i].bytes > files[j].bytes })
	if len(files) > 0 {
		fmt.Printf("\ntop files by volume:\n")
		for i, f := range files {
			if i >= top {
				break
			}
			fmt.Printf("  %12s  %s\n", report.HumanBytes(float64(f.bytes)), f.path)
		}
	}
	fmt.Println()
	return nil
}
