// Command iostudy runs the end-to-end reproduction study: it synthesizes a
// production campaign for Summit and/or Cori, runs it through the Darshan
// runtime against the simulated I/O subsystems, and prints the paper's
// tables and figures.
//
// Usage:
//
//	iostudy [-system both] [-scale 0.001] [-filescale 0.05] [-seed 1]
//	        [-workers 0] [-experiment all]
//
// Experiments: all, table2..table6, figure3, figure4, figure5, figure6,
// figure7, figure8, figure9, figure10, figure11 (figure12 is figure11 on
// Cori), and extension (the STDIOX statistics; pair with -extended).
//
// Persistence detours: -save streams every generated log into a campaign
// archive while the study runs; -save-columnar streams the campaign into a
// columnar file (.dgc) instead, which later re-renders order-of-magnitude
// faster; -from skips synthesis entirely and re-renders the experiments
// from an existing archive — row-oriented or columnar, sniffed from the
// file header — via the parallel streaming ingester (same deterministic
// worker-pool model as the study engine). All three take a single -system,
// not "both".
//
// Crash safety: SIGINT/SIGTERM stops the campaign at a job boundary and
// still renders a valid partial report. With -checkpoint, progress persists
// atomically every -checkpoint-every jobs (or logs, under -from) and an
// interrupted run continues with -resume — the resumed run's report is
// byte-identical to an uninterrupted one. A campaign checkpoint pins the
// system, seed, and scales, so -resume needs no other flags; a run that was
// saving an archive needs -save again (the archive is truncated to the
// checkpoint's durable offset and appended to). Under -from, -quarantine
// moves undecodable logs aside with a manifest.
//
// Fault injection: -faults takes "production" (a production-like mixture of
// server slowdowns, outages, and metadata storms over the campaign year) or
// a comma-separated spec such as
// "slowdowns=4,outages=1,storms=2,frac=0.1,severity=0.7,latfactor=10,duration=6,errrate=1e-4".
// The schedule is deterministic in -faultseed (default: the campaign seed),
// degraded intervals appear in -serverstats, per-job failures are reported
// instead of crashing the study, and the report gains a fault/retry section
// (also available alone via -experiment faults).
//
// Observability: -debug-addr serves net/http/pprof, expvar, and the live
// metrics registry (/metrics, /metrics.json) while the study runs; -metrics
// writes a schema-versioned JSON snapshot of the run's counters, histograms,
// and stage spans at exit and prints the observability section alongside
// the report. Metrics collection is off (and costs nothing) unless one of
// the two flags is given.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"iolayers/internal/analysis"
	"iolayers/internal/cli"
	"iolayers/internal/core"
	"iolayers/internal/darshan"
	"iolayers/internal/darshan/colfmt"
	"iolayers/internal/darshan/logfmt"
	"iolayers/internal/iosim"
	"iolayers/internal/iosim/serverstats"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/obsv"
	"iolayers/internal/report"
	"iolayers/internal/workload"
)

func main() {
	var (
		system     = flag.String("system", "both", "system to study: summit, cori, or both")
		scale      = flag.Float64("scale", 0.001, "job-count scale relative to the paper's campaigns")
		fileScale  = flag.Float64("filescale", 0.05, "per-log file-count scale")
		seed       = flag.Uint64("seed", 1, "campaign seed")
		experiment = flag.String("experiment", "all", "which table/figure to print")
		extended   = flag.Bool("extended", false, "enable the STDIOX extension module (Recommendation 4)")
		serverSide = flag.Bool("serverstats", false, "also print server-side load imbalance per layer")
		whatIf     = flag.Bool("whatif", false, "also run the Recommendation-2 counterfactual (middleware aggregation) and print the comparison")
		format     = flag.String("format", "text", "output format: text, or csv (figure series for plotting)")
		save       = flag.String("save", "", "stream every generated log into this campaign archive (.dgar); single -system only")
		saveCol    = flag.String("save-columnar", "", "stream the campaign into this columnar file (.dgc); single -system only, not resumable")
		from       = flag.String("from", "", "skip synthesis and analyze this campaign archive (.dgar or .dgc) instead; single -system only")
	)
	var common cli.CommonFlags
	common.Register(flag.CommandLine, cli.FlagsAll)
	flag.Parse()
	workers := &common.Workers
	quarantine := &common.QuarantineDir
	ckptPath := &common.CheckpointPath
	ckptEvery := &common.CheckpointEvery
	resumePath := &common.ResumePath

	ctx, cancel := cli.SignalContext("iostudy")
	defer cancel()

	act := common.Activate(ctx, "iostudy")
	defer act.Close()
	metrics := act.Metrics
	metricsOut := &common.MetricsOut

	if *from != "" {
		analyzeArchive(ctx, *from, *system, *workers, *experiment, *format, ingestCkptOptions{
			quarantine: *quarantine, ckptPath: *ckptPath, ckptEvery: *ckptEvery, resumePath: *resumePath,
		}, metrics, *metricsOut)
		return
	}

	if *resumePath != "" {
		resumeCampaign(ctx, *resumePath, *ckptPath, *ckptEvery, *workers, *save,
			*experiment, *format, *serverSide, metrics, *metricsOut)
		return
	}

	cfg := workload.Config{Seed: *seed, JobScale: *scale, FileScale: *fileScale,
		ExtendedStdio: *extended}
	// The schedule spans the campaign year, the timeline job operations are
	// stamped on.
	const yearSeconds = 365.25 * 86400
	schedule, err := common.FaultSchedule(*seed, yearSeconds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iostudy:", err)
		os.Exit(2)
	}
	if schedule != nil {
		cfg.Faults = schedule
		fmt.Fprintf(os.Stderr, "iostudy: %s\n", cfg.Faults.Describe())
	}
	var names []string
	switch strings.ToLower(*system) {
	case "both":
		names = []string{"Summit", "Cori"}
	case "summit":
		names = []string{"Summit"}
	case "cori":
		names = []string{"Cori"}
	default:
		fmt.Fprintf(os.Stderr, "iostudy: unknown system %q\n", *system)
		os.Exit(2)
	}
	if (*save != "" || *saveCol != "") && len(names) != 1 {
		fmt.Fprintln(os.Stderr, "iostudy: -save/-save-columnar needs a single -system (an archive holds one system's campaign)")
		os.Exit(2)
	}
	if *save != "" && *saveCol != "" {
		fmt.Fprintln(os.Stderr, "iostudy: -save and -save-columnar are exclusive (convert the archive afterwards with ioanalyze -convert)")
		os.Exit(2)
	}
	if *saveCol != "" && *ckptPath != "" {
		fmt.Fprintln(os.Stderr, "iostudy: -save-columnar cannot checkpoint (a columnar save is not resumable; use -save, then ioanalyze -convert)")
		os.Exit(2)
	}
	if *ckptPath != "" && len(names) != 1 {
		fmt.Fprintln(os.Stderr, "iostudy: -checkpoint needs a single -system (a checkpoint holds one campaign)")
		os.Exit(2)
	}

	for _, name := range names {
		campaign, err := core.NewCampaign(name, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iostudy:", err)
			os.Exit(1)
		}
		campaign.Workers = *workers
		var collectors map[string]*serverstats.Collector
		if *serverSide {
			collectors = iosim.AttachCollectors(campaign.System)
		}
		opts := core.RunOptions{CheckpointPath: *ckptPath, CheckpointEvery: *ckptEvery,
			Metrics: metrics}
		var arch *archiveSink
		if *save != "" {
			arch = newArchiveSink(*save)
			opts.Sink, opts.SyncSink = arch.sink, arch.sync
		}
		var colSink *columnarSink
		if *saveCol != "" {
			colSink = newColumnarSink(*saveCol)
			opts.Sink = colSink.sink
		}
		rep, err := campaign.RunCheckpointed(ctx, opts)
		if cli.Interrupted(err) {
			reportInterrupted(*ckptPath, *save)
			if arch != nil {
				arch.abandon()
			}
			if colSink != nil {
				colSink.abandon()
			}
			if rep != nil {
				printReport(name, rep, *scale, *fileScale, *seed, *experiment, *format, *serverSide, collectors)
			}
			publishCollectors(metrics, collectors)
			emitMetrics(metrics, *metricsOut)
			os.Exit(cli.ExitInterrupted)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "iostudy:", err)
			os.Exit(1)
		}
		if arch != nil {
			if err := arch.close(); err != nil {
				fmt.Fprintln(os.Stderr, "iostudy:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "iostudy: campaign archived to %s\n", *save)
		}
		if colSink != nil {
			if err := colSink.close(); err != nil {
				fmt.Fprintln(os.Stderr, "iostudy:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "iostudy: campaign saved columnar to %s (%d segments)\n",
				*saveCol, colSink.segments)
		}
		printReport(name, rep, *scale, *fileScale, *seed, *experiment, *format, *serverSide, collectors)
		publishCollectors(metrics, collectors)
		if *whatIf {
			altCfg := cfg
			altCfg.WhatIfAggregation = true
			alt, err := core.NewCampaign(name, altCfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "iostudy:", err)
				os.Exit(1)
			}
			alt.Workers = *workers
			altRep, err := alt.RunContext(ctx, nil)
			if err != nil {
				if cli.Interrupted(err) {
					os.Exit(cli.ExitInterrupted)
				}
				fmt.Fprintln(os.Stderr, "iostudy:", err)
				os.Exit(1)
			}
			fmt.Println(report.WhatIf(rep, altRep))
		}
	}
	emitMetrics(metrics, *metricsOut)
}

// publishCollectors folds per-server load tallies into the metrics registry
// (no-op when either side is absent).
func publishCollectors(m *obsv.Registry, collectors map[string]*serverstats.Collector) {
	if m == nil {
		return
	}
	for _, c := range collectors {
		c.Publish(m)
	}
}

// emitMetrics closes out the observability story for a run: pool gauges are
// published, the human-readable section printed, and the JSON snapshot
// written for -metrics.
func emitMetrics(m *obsv.Registry, path string) {
	if m == nil {
		return
	}
	logfmt.PublishMetrics(m)
	fmt.Println(report.Observability(m.Snapshot()))
	cli.WriteMetrics("iostudy", path, m)
}

// resumeCampaign continues a synthesis run from a campaign checkpoint: the
// checkpoint pins the system and workload config, so no other study flags
// are consulted. A campaign that was saving an archive must be given -save
// again; the archive is truncated to the checkpoint's durable offset.
func resumeCampaign(ctx context.Context, resumePath, ckptPath string, ckptEvery, workers int,
	save, experiment, format string, serverSide bool, metrics *obsv.Registry, metricsOut string) {
	ck, err := core.LoadCampaignCheckpoint(resumePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iostudy:", err)
		os.Exit(2)
	}
	campaign, err := core.ResumeCampaign(ck)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iostudy:", err)
		os.Exit(1)
	}
	if workers > 0 {
		campaign.Workers = workers
	}
	if ckptPath == "" {
		ckptPath = resumePath
	}
	fmt.Fprintf(os.Stderr, "iostudy: resuming %s campaign, %d of %d jobs done\n",
		ck.Meta.SystemName, ck.JobsDone(), len(ck.Done))

	opts := core.RunOptions{CheckpointPath: ckptPath, CheckpointEvery: ckptEvery, Resume: ck,
		Metrics: metrics}
	var arch *archiveSink
	if ck.ArchiveEntries > 0 || ck.ArchiveBytes > 0 {
		if save == "" {
			fmt.Fprintln(os.Stderr, "iostudy: this campaign was saving an archive; pass -save with its path to resume")
			os.Exit(2)
		}
		arch = reopenArchiveSink(save, ck.ArchiveBytes, ck.ArchiveEntries)
		opts.Sink, opts.SyncSink = arch.sink, arch.sync
	} else if save != "" {
		fmt.Fprintln(os.Stderr, "iostudy: checkpoint has no archive state; -save cannot be added on resume")
		os.Exit(2)
	}
	cfg := ck.Meta.Config

	rep, err := campaign.RunCheckpointed(ctx, opts)
	if cli.Interrupted(err) {
		reportInterrupted(ckptPath, save)
		if arch != nil {
			arch.abandon()
		}
		if rep != nil {
			printReport(ck.Meta.SystemName, rep, cfg.JobScale, cfg.FileScale, cfg.Seed,
				experiment, format, false, nil)
		}
		emitMetrics(metrics, metricsOut)
		os.Exit(cli.ExitInterrupted)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "iostudy:", err)
		os.Exit(1)
	}
	if arch != nil {
		if err := arch.close(); err != nil {
			fmt.Fprintln(os.Stderr, "iostudy:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "iostudy: campaign archived to %s\n", save)
	}
	_ = serverSide // collectors cannot span an interrupted run; not offered on resume
	printReport(ck.Meta.SystemName, rep, cfg.JobScale, cfg.FileScale, cfg.Seed,
		experiment, format, false, nil)
	emitMetrics(metrics, metricsOut)
}

// reportInterrupted tells the user how to pick the run back up.
func reportInterrupted(ckptPath, save string) {
	if ckptPath == "" {
		fmt.Fprintln(os.Stderr, "iostudy: interrupted — partial report follows (run with -checkpoint to make interrupted runs resumable)")
		return
	}
	hint := "iostudy -resume " + ckptPath
	if save != "" {
		hint += " -save " + save
	}
	fmt.Fprintf(os.Stderr, "iostudy: interrupted — partial report follows; resume with: %s\n", hint)
}

// printReport renders one system's report in the chosen format.
func printReport(name string, rep *analysis.Report, scale, fileScale float64, seed uint64,
	experiment, format string, serverSide bool, collectors map[string]*serverstats.Collector) {
	var out string
	if strings.ToLower(format) == "csv" {
		out = report.CSV(rep)
	} else {
		var rerr error
		out, rerr = render(rep, strings.ToLower(experiment))
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "iostudy:", rerr)
			os.Exit(2)
		}
	}
	fmt.Printf("==== %s (scale %g, filescale %g, seed %d) ====\n\n",
		name, scale, fileScale, seed)
	fmt.Println(out)
	if serverSide {
		fmt.Println(report.ServerStats(name, collectors))
	}
}

// archiveSink streams generated logs into a campaign archive, with the
// Flush+fsync sync point the checkpoint machinery records as the durable
// resume offset.
type archiveSink struct {
	mu sync.Mutex
	f  *os.File
	aw *logfmt.ArchiveWriter
}

func newArchiveSink(path string) *archiveSink {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iostudy:", err)
		os.Exit(1)
	}
	aw, err := logfmt.NewArchiveWriter(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iostudy:", err)
		os.Exit(1)
	}
	return &archiveSink{f: f, aw: aw}
}

// reopenArchiveSink truncates the archive at path to the checkpoint's
// durable offset and appends from there.
func reopenArchiveSink(path string, offset int64, entries int) *archiveSink {
	aw, f, err := logfmt.OpenArchiveAppend(path, offset, entries)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iostudy:", err)
		os.Exit(1)
	}
	return &archiveSink{f: f, aw: aw}
}

func (s *archiveSink) sink(jobIdx, logIdx int, log *darshan.Log) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.aw.Append(log)
}

func (s *archiveSink) sync() (int64, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.aw.Flush(); err != nil {
		return 0, 0, err
	}
	if err := s.f.Sync(); err != nil {
		return 0, 0, err
	}
	return s.aw.Offset(), s.aw.Count(), nil
}

// close finishes a completed archive: terminator, flush, fsync.
func (s *archiveSink) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.aw.Close(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// abandon drops the file handle of an interrupted save without writing a
// terminator: the checkpoint's durable offset — not the file length — is
// the resume point, and OpenArchiveAppend truncates to it.
func (s *archiveSink) abandon() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.f.Close()
}

// columnarSink streams generated logs straight into a columnar campaign
// file. The writer accumulates a segment at a time onto a temp file that
// is fsynced and renamed into place only on a clean close, so the target
// path never holds a half-written campaign — which is also why a columnar
// save is not resumable (there is no durable mid-run offset to truncate
// back to).
type columnarSink struct {
	mu       sync.Mutex
	f        *os.File
	cw       *colfmt.Writer
	dst      string
	segments int
}

func newColumnarSink(path string) *columnarSink {
	f, err := os.CreateTemp(filepath.Dir(path), ".iostudy-colsave-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "iostudy:", err)
		os.Exit(1)
	}
	cw, err := colfmt.NewWriter(f, 0)
	if err != nil {
		f.Close()
		os.Remove(f.Name())
		fmt.Fprintln(os.Stderr, "iostudy:", err)
		os.Exit(1)
	}
	return &columnarSink{f: f, cw: cw, dst: path}
}

func (s *columnarSink) sink(jobIdx, logIdx int, log *darshan.Log) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cw.Append(log)
}

// close finishes the columnar file — terminator, fsync — and commits it to
// its destination path atomically.
func (s *columnarSink) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.cw.Close(); err != nil {
		s.f.Close()
		os.Remove(s.f.Name())
		return err
	}
	s.segments = s.cw.Segments()
	if err := s.f.Chmod(0o644); err != nil {
		s.f.Close()
		os.Remove(s.f.Name())
		return err
	}
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		os.Remove(s.f.Name())
		return err
	}
	if err := s.f.Close(); err != nil {
		os.Remove(s.f.Name())
		return err
	}
	return os.Rename(s.f.Name(), s.dst)
}

// abandon discards the temp file of an interrupted columnar save; the
// destination path is left untouched.
func (s *columnarSink) abandon() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.f.Close()
	os.Remove(s.f.Name())
}

// ingestCkptOptions carries the robustness flags into the -from path.
type ingestCkptOptions struct {
	quarantine string
	ckptPath   string
	ckptEvery  int
	resumePath string
}

// analyzeArchive is the -from path: parallel streaming ingestion of an
// existing campaign archive, rendered like a freshly synthesized study.
func analyzeArchive(ctx context.Context, path, system string, workers int, experiment, format string, ck ingestCkptOptions,
	metrics *obsv.Registry, metricsOut string) {
	opts := core.IngestOptions{
		Workers:         workers,
		QuarantineDir:   ck.quarantine,
		CheckpointPath:  ck.ckptPath,
		CheckpointEvery: ck.ckptEvery,
		Metrics:         metrics,
	}
	if ck.resumePath != "" {
		ickpt, err := core.LoadIngestCheckpoint(ck.resumePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iostudy:", err)
			os.Exit(2)
		}
		if ickpt.Mode != "archive" && ickpt.Mode != "columnar" {
			fmt.Fprintf(os.Stderr, "iostudy: %s is a %q ingestion checkpoint; -from resumes archives\n", ck.resumePath, ickpt.Mode)
			os.Exit(2)
		}
		opts.Resume = ickpt
		system, path = ickpt.System, ickpt.Source
		if opts.CheckpointPath == "" {
			opts.CheckpointPath = ck.resumePath
		}
		fmt.Fprintf(os.Stderr, "iostudy: resuming ingestion of %s (%d entries done)\n",
			ickpt.Source, ickpt.EntriesDone)
	}
	if strings.EqualFold(system, "both") {
		fmt.Fprintln(os.Stderr, "iostudy: -from needs a single -system (an archive holds one system's campaign)")
		os.Exit(2)
	}
	sys := systems.ByName(system)
	if sys == nil {
		fmt.Fprintf(os.Stderr, "iostudy: unknown system %q\n", system)
		os.Exit(2)
	}
	ingest := core.IngestArchive
	if colfmt.SniffFile(path) {
		ingest = core.IngestColumnar
	}
	rep, res, err := ingest(ctx, sys, path, opts)
	for _, f := range res.Failures {
		fmt.Fprintf(os.Stderr, "iostudy: skipping %s: %v\n", f.Source, f.Err)
	}
	if res.Quarantined > 0 {
		fmt.Fprintf(os.Stderr, "iostudy: quarantined %d entries into %s\n", res.Quarantined, ck.quarantine)
	}
	interrupted := cli.Interrupted(err)
	if err != nil && !interrupted {
		fmt.Fprintln(os.Stderr, "iostudy:", err)
		os.Exit(1)
	}
	if res.Parsed == 0 && !interrupted {
		fmt.Fprintf(os.Stderr, "iostudy: no readable logs in %s (%d failures)\n", path, res.Failed)
		os.Exit(1)
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "iostudy: interrupted after %d logs — partial report follows\n", res.Parsed)
		if opts.CheckpointPath != "" {
			fmt.Fprintf(os.Stderr, "iostudy: resume with: iostudy -from %s -resume %s\n", path, opts.CheckpointPath)
		}
	}
	var out string
	if strings.ToLower(format) == "csv" {
		out = report.CSV(rep)
	} else {
		var rerr error
		out, rerr = render(rep, strings.ToLower(experiment))
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "iostudy:", rerr)
			os.Exit(2)
		}
	}
	fmt.Printf("==== %s (from %s, %d logs, %d unreadable) ====\n\n",
		sys.Name, path, res.Parsed, res.Failed)
	fmt.Println(out)
	emitMetrics(metrics, metricsOut)
	if interrupted {
		os.Exit(cli.ExitInterrupted)
	}
}

func render(r *analysis.Report, experiment string) (string, error) {
	// Experiment names are section names; report.Section resolves the
	// historical aliases (figure12, e1) itself.
	return report.Section(r, experiment)
}
