// Command iostudy runs the end-to-end reproduction study: it synthesizes a
// production campaign for Summit and/or Cori, runs it through the Darshan
// runtime against the simulated I/O subsystems, and prints the paper's
// tables and figures.
//
// Usage:
//
//	iostudy [-system both] [-scale 0.001] [-filescale 0.05] [-seed 1]
//	        [-workers 0] [-experiment all]
//
// Experiments: all, table2..table6, figure3, figure4, figure5, figure6,
// figure7, figure8, figure9, figure10, figure11 (figure12 is figure11 on
// Cori), and extension (the STDIOX statistics; pair with -extended).
//
// Persistence detours: -save streams every generated log into a campaign
// archive while the study runs; -from skips synthesis entirely and
// re-renders the experiments from an existing archive via the parallel
// streaming ingester (same deterministic worker-pool model as the study
// engine). Both take a single -system, not "both".
//
// Fault injection: -faults takes "production" (a production-like mixture of
// server slowdowns, outages, and metadata storms over the campaign year) or
// a comma-separated spec such as
// "slowdowns=4,outages=1,storms=2,frac=0.1,severity=0.7,latfactor=10,duration=6,errrate=1e-4".
// The schedule is deterministic in -faultseed (default: the campaign seed),
// degraded intervals appear in -serverstats, per-job failures are reported
// instead of crashing the study, and the report gains a fault/retry section
// (also available alone via -experiment faults).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"

	"iolayers/internal/analysis"
	"iolayers/internal/core"
	"iolayers/internal/darshan"
	"iolayers/internal/darshan/logfmt"
	"iolayers/internal/iosim"
	"iolayers/internal/iosim/faults"
	"iolayers/internal/iosim/serverstats"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/report"
	"iolayers/internal/workload"
)

func main() {
	var (
		system     = flag.String("system", "both", "system to study: summit, cori, or both")
		scale      = flag.Float64("scale", 0.001, "job-count scale relative to the paper's campaigns")
		fileScale  = flag.Float64("filescale", 0.05, "per-log file-count scale")
		seed       = flag.Uint64("seed", 1, "campaign seed")
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		experiment = flag.String("experiment", "all", "which table/figure to print")
		extended   = flag.Bool("extended", false, "enable the STDIOX extension module (Recommendation 4)")
		serverSide = flag.Bool("serverstats", false, "also print server-side load imbalance per layer")
		whatIf     = flag.Bool("whatif", false, "also run the Recommendation-2 counterfactual (middleware aggregation) and print the comparison")
		format     = flag.String("format", "text", "output format: text, or csv (figure series for plotting)")
		save       = flag.String("save", "", "stream every generated log into this campaign archive (.dgar); single -system only")
		from       = flag.String("from", "", "skip synthesis and analyze this campaign archive (.dgar) instead; single -system only")
		faultSpec  = flag.String("faults", "", `fault schedule: "production" or k=v list (slowdowns,outages,storms,frac,severity,latfactor,duration,errrate); empty = no faults`)
		faultSeed  = flag.Uint64("faultseed", 0, "fault-schedule seed (0 = campaign seed)")
	)
	flag.Parse()

	if *from != "" {
		analyzeArchive(*from, *system, *workers, *experiment, *format)
		return
	}

	cfg := workload.Config{Seed: *seed, JobScale: *scale, FileScale: *fileScale,
		ExtendedStdio: *extended}
	if *faultSpec != "" {
		fseed := *faultSeed
		if fseed == 0 {
			fseed = *seed
		}
		// The schedule spans the campaign year, the timeline job
		// operations are stamped on.
		const yearSeconds = 365.25 * 86400
		gc, err := faults.ParseSpec(*faultSpec, fseed, yearSeconds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iostudy:", err)
			os.Exit(2)
		}
		cfg.Faults = faults.Generate(gc)
		fmt.Fprintf(os.Stderr, "iostudy: %s\n", cfg.Faults.Describe())
	}
	var names []string
	switch strings.ToLower(*system) {
	case "both":
		names = []string{"Summit", "Cori"}
	case "summit":
		names = []string{"Summit"}
	case "cori":
		names = []string{"Cori"}
	default:
		fmt.Fprintf(os.Stderr, "iostudy: unknown system %q\n", *system)
		os.Exit(2)
	}
	if *save != "" && len(names) != 1 {
		fmt.Fprintln(os.Stderr, "iostudy: -save needs a single -system (an archive holds one system's campaign)")
		os.Exit(2)
	}

	for _, name := range names {
		campaign, err := core.NewCampaign(name, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iostudy:", err)
			os.Exit(1)
		}
		campaign.Workers = *workers
		var collectors map[string]*serverstats.Collector
		if *serverSide {
			collectors = iosim.AttachCollectors(campaign.System)
		}
		var sink core.LogSink
		var closeSink func() error
		if *save != "" {
			sink, closeSink = archiveSink(*save)
		}
		rep, err := campaign.Run(sink)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iostudy:", err)
			os.Exit(1)
		}
		if closeSink != nil {
			if err := closeSink(); err != nil {
				fmt.Fprintln(os.Stderr, "iostudy:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "iostudy: campaign archived to %s\n", *save)
		}
		var out string
		if strings.ToLower(*format) == "csv" {
			out = report.CSV(rep)
		} else {
			var rerr error
			out, rerr = render(rep, strings.ToLower(*experiment))
			if rerr != nil {
				fmt.Fprintln(os.Stderr, "iostudy:", rerr)
				os.Exit(2)
			}
		}
		fmt.Printf("==== %s (scale %g, filescale %g, seed %d) ====\n\n",
			name, *scale, *fileScale, *seed)
		fmt.Println(out)
		if *serverSide {
			fmt.Println(report.ServerStats(name, collectors))
		}
		if *whatIf {
			altCfg := cfg
			altCfg.WhatIfAggregation = true
			alt, err := core.NewCampaign(name, altCfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "iostudy:", err)
				os.Exit(1)
			}
			alt.Workers = *workers
			altRep, err := alt.Run(nil)
			if err != nil {
				fmt.Fprintln(os.Stderr, "iostudy:", err)
				os.Exit(1)
			}
			fmt.Println(report.WhatIf(rep, altRep))
		}
	}
}

// archiveSink returns a concurrency-safe LogSink streaming into a fresh
// archive at path, plus the function that writes the terminator.
func archiveSink(path string) (core.LogSink, func() error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iostudy:", err)
		os.Exit(1)
	}
	aw, err := logfmt.NewArchiveWriter(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iostudy:", err)
		os.Exit(1)
	}
	var mu sync.Mutex
	sink := func(jobIdx, logIdx int, log *darshan.Log) error {
		mu.Lock()
		defer mu.Unlock()
		return aw.Append(log)
	}
	return sink, func() error {
		if err := aw.Close(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
}

// analyzeArchive is the -from path: parallel streaming ingestion of an
// existing campaign archive, rendered like a freshly synthesized study.
func analyzeArchive(path, system string, workers int, experiment, format string) {
	if strings.EqualFold(system, "both") {
		fmt.Fprintln(os.Stderr, "iostudy: -from needs a single -system (an archive holds one system's campaign)")
		os.Exit(2)
	}
	sys := systems.ByName(system)
	if sys == nil {
		fmt.Fprintf(os.Stderr, "iostudy: unknown system %q\n", system)
		os.Exit(2)
	}
	rep, res, err := core.IngestArchive(sys, path, core.IngestOptions{Workers: workers})
	for _, f := range res.Failures {
		fmt.Fprintf(os.Stderr, "iostudy: skipping %s: %v\n", f.Source, f.Err)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "iostudy:", err)
		os.Exit(1)
	}
	if res.Parsed == 0 {
		fmt.Fprintf(os.Stderr, "iostudy: no readable logs in %s (%d failures)\n", path, res.Failed)
		os.Exit(1)
	}
	var out string
	if strings.ToLower(format) == "csv" {
		out = report.CSV(rep)
	} else {
		var rerr error
		out, rerr = render(rep, strings.ToLower(experiment))
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "iostudy:", rerr)
			os.Exit(2)
		}
	}
	fmt.Printf("==== %s (from %s, %d logs, %d unreadable) ====\n\n",
		sys.Name, path, res.Parsed, res.Failed)
	fmt.Println(out)
}

func render(r *analysis.Report, experiment string) (string, error) {
	switch experiment {
	case "all":
		return report.Everything(r), nil
	case "table2":
		return report.Table2(r), nil
	case "table3":
		return report.Table3(r), nil
	case "table4":
		return report.Table4(r), nil
	case "table5":
		return report.Table5(r), nil
	case "table6":
		return report.Table6(r), nil
	case "figure3":
		return report.Figure3(r), nil
	case "figure4":
		return report.Figure4(r, false), nil
	case "figure5":
		return report.Figure4(r, true), nil
	case "figure6":
		return report.Figure6(r, false), nil
	case "figure7":
		return report.Figure7(r), nil
	case "figure8":
		return report.Figure6(r, true), nil
	case "figure9":
		return report.Figure9(r), nil
	case "figure10":
		return report.Figure10(r), nil
	case "figure11", "figure12":
		return report.Figure11(r), nil
	case "extension", "e1":
		return report.ExtensionSTDIOX(r), nil
	case "faults":
		if s := report.Faults(r); s != "" {
			return s, nil
		}
		return "", fmt.Errorf("no fault data in this campaign (run with -faults)")
	case "tuning":
		return report.Tuning(r), nil
	case "temporal":
		return report.Temporal(r), nil
	case "users":
		return report.Users(r), nil
	default:
		return "", fmt.Errorf("unknown experiment %q", experiment)
	}
}
