module iolayers

go 1.22
